"""Per-sub-graph BC calculation (paper Algorithm 2 / equation 7).

For each root source ``s ∈ R_sgi``: run the forward BFS, the fused
four-dependency backward sweep, and merge into the sub-graph's local
scores:

* ``v ≠ s`` (Algorithm 2 line 46)::

      bc[v] += (1 + γ(s)) · (δ_i2i(v) + δ_i2o(v))
               + β(s) · δ_i2i(v)            # out2in, if s ∈ A_sgi
               + δ_o2o(v)                   # out2out, if s ∈ A_sgi

* ``v == s`` (line 48) credits the γ(s) pendant sources whose DAGs
  were never built: each derived source ``u -> s`` depends on ``s``
  for every target it reaches *through* ``s``::

      bc[s] += γ(s) · (δ_i2i(s) [− 1 if undirected]
                       + δ_i2o(s) + [α(s) if s ∈ A_sgi])

  Two corrections relative to the paper's line-48 shorthand, both
  verified against the exact-Brandes oracle (see DESIGN.md §3):
  (a) undirected derived sources must not count themselves as a
  target, hence the ``− 1`` per derived source; (b) when ``s`` is a
  boundary articulation point the Phase-0 initialisation skips ``s``
  itself, so the derived sources' paths to targets *beyond s* are
  restored by adding ``α(s)``.

Only *reached* vertices are merged — Algorithm 2 iterates the
``Levels[]`` buckets, which automatically drops the α initialisation
parked at unreachable articulation points.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.baselines.common import WorkCounter
from repro.core.dependencies import accumulate_four_dependencies
from repro.decompose.partition import Subgraph
from repro.graph.traversal import bfs_sigma
from repro.types import SCORE_DTYPE, VERTEX_DTYPE

__all__ = ["bc_subgraph"]


def bc_subgraph(
    sg: Subgraph,
    *,
    eliminate_pendants: bool = True,
    counter: Optional[WorkCounter] = None,
    roots: Optional[np.ndarray] = None,
    batch_size: Union[int, str, None] = None,
    compress: bool = False,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Local BC scores of one sub-graph (``BC_SGi`` of equation 7).

    Parameters
    ----------
    sg:
        A sub-graph with ``alpha``/``beta`` already filled in by
        :func:`repro.decompose.alphabeta.compute_alpha_beta`.
    eliminate_pendants:
        When False, ignore R/γ and run every vertex as a source (the
        total-redundancy ablation; results are identical).
    counter:
        Optional examined-edge tally.
    roots:
        Restrict to a subset of the root set (local ids). Root subsets
        from different calls sum to the full sub-graph scores — this is
        how the process pool parallelises *within* a large sub-graph
        (the fine-grained level of the paper's two-level scheme,
        realised as source chunks).
    batch_size:
        ``None`` runs one root at a time (this function's own loop);
        a positive int or ``"auto"`` delegates to the multi-source
        kernel (:func:`repro.core.batched_subgraph.bc_subgraph_batched`),
        which processes roots in ``(B, n)`` batches with identical
        edge counting and float64-tolerance-identical scores.
    compress:
        Run this sub-graph through the structural compression ladder
        first (:mod:`repro.compress`): when any reduction rule fires
        the compressed kernel executes the plan (scores identical to
        float64 tolerance); trivial plans fall through to the plain
        per-source or batched kernel unchanged.
    kernel:
        Compute-kernel name for the batched path (forwarded to
        :func:`~repro.core.batched_subgraph.bc_subgraph_batched`; see
        docs/KERNELS.md).  Only meaningful with ``batch_size``; the
        per-source loop ignores it.

    Returns
    -------
    Local score array (index by local vertex id; translate through
    ``sg.vertices`` to merge globally).
    """
    if compress:
        from repro.compress import bc_subgraph_compressed, compression_plan

        plan = compression_plan(sg, eliminate_pendants=eliminate_pendants)
        if plan.nontrivial:
            # the compressed kernel is the single integration point:
            # batching adds nothing on the shrunken core, so every
            # execution path funnels here once a rule has fired
            return bc_subgraph_compressed(
                sg,
                plan,
                eliminate_pendants=eliminate_pendants,
                counter=counter,
                roots=roots,
            )
    if batch_size is not None:
        from repro.core.batched_subgraph import bc_subgraph_batched

        return bc_subgraph_batched(
            sg,
            eliminate_pendants=eliminate_pendants,
            counter=counter,
            roots=roots,
            batch_size=batch_size,
            kernel=kernel,
        )
    g = sg.graph
    n = g.n
    undirected = not g.directed
    bc = np.zeros(n, dtype=SCORE_DTYPE)
    if n == 0:
        return bc
    if eliminate_pendants:
        gamma = sg.gamma
        if roots is None:
            roots = sg.roots
    else:
        gamma = np.zeros(n, dtype=SCORE_DTYPE)
        if roots is None:
            roots = np.arange(n, dtype=VERTEX_DTYPE)

    alpha = sg.alpha
    beta = sg.beta
    is_art = sg.is_boundary_art

    for s in roots.tolist():
        res = bfs_sigma(g, s, keep_level_arcs=True)
        if counter is not None:
            counter.add(res.edges_traversed)
        dep = accumulate_four_dependencies(
            res, alpha=alpha, beta=beta, is_art=is_art, counter=counter
        )
        g_s = float(gamma[s])

        # merge for v != s, reached vertices only
        if len(res.levels) > 1:
            reached = np.concatenate(res.levels[1:])
            contrib = (1.0 + g_s) * (
                dep.delta_i2i[reached] + dep.delta_i2o[reached]
            )
            if dep.source_is_art:
                contrib = (
                    contrib
                    + dep.size_o2i * dep.delta_i2i[reached]
                    + dep.delta_o2o[reached]
                )
            np.add.at(bc, reached, contrib)

        # merge for v == s: the γ(s) derived pendant sources
        if g_s:
            self_i2i = dep.delta_i2i[s] - (1.0 if undirected else 0.0)
            self_i2o = dep.delta_i2o[s] + (
                float(alpha[s]) if dep.source_is_art else 0.0
            )
            bc[s] += g_s * (self_i2i + self_i2o)
    return bc
