"""Serving bench: cold CLI invocations vs warm served queries.

Two measurements per workload, through the warm-path daemon
(:mod:`repro.serve`, docs/SERVING.md):

``cold``
    ``repro-bc compute GRAPH --top 10`` as a fresh subprocess — the
    pre-daemon unit of work: interpreter start-up, graph parse,
    articulation decomposition, α/β counting and a full BC pass on
    every single query.
``warm``
    The same full-BC query against a resident daemon (in-process
    `make_server` + `ServeClient` over TCP loopback) after one
    priming request: the graph, partition state and assembled score
    vector are all hot, so a query is one HTTP round trip and a
    score-LRU hit.

The PR's acceptance bar is **warm p50 >= 20x faster than cold p50**;
persistent residency removes seconds of per-query setup, so the
measured ratios sit far above it. A third phase streams single-edge
deltas (``POST /delta``) while reader threads keep querying, and
reports sustained reader QPS plus the delta commit latency — the
served scores are exact after every commit (tests/test_serve.py pins
consistency; this file measures throughput).

The committed ``BENCH_serving.json`` records both workloads;
``check_rows`` holds future runs to the 20x bar and to no worse than
half the committed warm speedup.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.persistence import environment_provenance
from repro.bench.workloads import get_graph
from repro.cache import ContributionStore
from repro.core.config import APGREConfig
from repro.serve.client import ServeClient
from repro.serve.server import make_server

pytestmark = pytest.mark.benchmarks

ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"
RESULTS_DIR = Path(__file__).resolve().parent / "results"
SCHEMA_VERSION = 1  # of this payload; bumped when row keys change

#: (suite graph, scale) — the contribution-cache workload pair, so the
#: cold column here is directly comparable to BENCH_cache.json's.
WORKLOADS = [
    ("USA-roadBAY", 2.0),
    ("Email-Enron", 2.0),
]
QUICK_WORKLOADS = [
    ("USA-roadBAY", 1.0),
]
SEED = 11
COLD_REPEAT = 3
QUICK_COLD_REPEAT = 2
WARM_QUERIES = 40
QUICK_WARM_QUERIES = 15
DELTA_STREAM = 4
QUICK_DELTA_STREAM = 2
READER_THREADS = 2


def _percentile(samples, q):
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(1, int(np.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


def _write_edge_list(graph, path):
    src = np.repeat(np.arange(graph.n), np.diff(graph.out_indptr))
    dst = graph.out_indices
    mask = src < dst
    lines = [f"{u} {v}" for u, v in zip(src[mask].tolist(),
                                        dst[mask].tolist())]
    path.write_text("\n".join(lines) + "\n")


def _fresh_edges(graph, k, seed=SEED):
    """``k`` edges absent from the graph, for the delta stream."""
    src = np.repeat(np.arange(graph.n), np.diff(graph.out_indptr))
    existing = set(zip(src.tolist(), graph.out_indices.tolist()))
    rng = np.random.default_rng(seed)
    chosen, seen = [], set()
    while len(chosen) < k:
        a, b = (int(x) for x in rng.integers(0, graph.n, 2))
        key = (min(a, b), max(a, b))
        if a == b or (a, b) in existing or key in seen:
            continue
        seen.add(key)
        chosen.append(key)
    return chosen


def _measure_cold_cli(graph_path, repeat):
    """Wall-clock of full cold ``repro-bc compute`` subprocesses."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    samples = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "compute",
             str(graph_path), "--top", "10"],
            env=env, capture_output=True, text=True,
        )
        samples.append(time.perf_counter() - t0)
        assert proc.returncode == 0, (
            f"cold CLI run failed:\n{proc.stdout}{proc.stderr}"
        )
    return samples


def measure_workload(name, scale, *, quick=False):
    """Cold-CLI vs warm-served measurement row for one suite graph."""
    graph = get_graph(name, scale=scale)
    cold_repeat = QUICK_COLD_REPEAT if quick else COLD_REPEAT
    warm_queries = QUICK_WARM_QUERIES if quick else WARM_QUERIES
    deltas = QUICK_DELTA_STREAM if quick else DELTA_STREAM

    with tempfile.TemporaryDirectory(prefix="bench_serving_") as tmp:
        graph_path = Path(tmp) / "graph.txt"
        _write_edge_list(graph, graph_path)
        cold_samples = _measure_cold_cli(graph_path, cold_repeat)

    store = ContributionStore()
    server = make_server(
        graph, port=0, base_config=APGREConfig(cache=store), store=store
    )
    state = server.state
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}
    )
    thread.start()
    try:
        host, port = server.server_address
        client = ServeClient(host=host, port=port, timeout=600.0)

        t0 = time.perf_counter()
        primed = client.bc(full=True)  # the daemon's one cold compute
        serve_prime = time.perf_counter() - t0
        assert primed["cached"] is False

        warm_samples = []
        for _ in range(warm_queries):
            t0 = time.perf_counter()
            payload = client.bc(full=True)
            warm_samples.append(time.perf_counter() - t0)
            assert payload["cached"] is True

        t0 = time.perf_counter()
        replay = client.bc(full=True, fresh=True)  # store replay path
        replay_seconds = time.perf_counter() - t0
        assert replay["cached"] is False

        # delta stream: one writer commits versions, readers keep
        # pulling top-k; sustained QPS is reads / writer wall-clock
        stop = threading.Event()
        reads = []

        def reader():
            local_client = ServeClient(
                host=host, port=port, timeout=600.0
            )
            while not stop.is_set():
                t0 = time.perf_counter()
                local_client.bc(top=10)
                reads.append(time.perf_counter() - t0)

        readers = [
            threading.Thread(target=reader) for _ in range(READER_THREADS)
        ]
        delta_samples = []
        t_stream = time.perf_counter()
        for t in readers:
            t.start()
        try:
            for edge in _fresh_edges(graph, deltas):
                t0 = time.perf_counter()
                client.delta(add=[edge])
                delta_samples.append(time.perf_counter() - t0)
        finally:
            stream_seconds = time.perf_counter() - t_stream
            stop.set()
            for t in readers:
                t.join(timeout=120)
        final = client.healthz()
        assert final["version"] == deltas + 1, (
            f"{name}: stream committed {final['version'] - 1} of "
            f"{deltas} deltas"
        )
        stats = client.stats()
    finally:
        server.shutdown()
        thread.join(timeout=60)
        server.server_close()

    cold_p50 = _percentile(cold_samples, 50)
    warm_p50 = _percentile(warm_samples, 50)
    return {
        "graph": name,
        "scale": scale,
        "n": graph.n,
        "m": graph.num_arcs,
        "cold_invocations": len(cold_samples),
        "cold_p50_seconds": round(cold_p50, 4),
        "cold_p99_seconds": round(_percentile(cold_samples, 99), 4),
        "serve_prime_seconds": round(serve_prime, 4),
        "warm_queries": len(warm_samples),
        "warm_p50_seconds": round(warm_p50, 6),
        "warm_p99_seconds": round(_percentile(warm_samples, 99), 6),
        "warm_speedup_p50": round(cold_p50 / warm_p50, 1),
        "fresh_replay_seconds": round(replay_seconds, 4),
        "delta_stream": {
            "deltas": deltas,
            "delta_p50_seconds": round(_percentile(delta_samples, 50), 4),
            "reader_threads": READER_THREADS,
            "reader_queries": len(reads),
            "reader_p50_seconds": round(_percentile(reads, 50), 6),
            "sustained_qps": round(len(reads) / stream_seconds, 1),
            "final_version": final["version"],
        },
        "score_lru": stats["score_lru"],
        "contribution_store": {
            k: stats["contribution_store"][k]
            for k in ("hits", "misses", "puts", "evictions")
        },
        "computed_vectors": state.computed_vectors,
    }


def run_bench(quick=False, out_path=None):
    """Measure every workload; returns (payload, path written)."""
    workloads = QUICK_WORKLOADS if quick else WORKLOADS
    rows = [measure_workload(*w, quick=quick) for w in workloads]
    payload = {
        "bench": "bench_serving",
        "schema_version": SCHEMA_VERSION,
        "seed": SEED,
        "quick": quick,
        "environment": environment_provenance(),
        "workloads": rows,
    }
    if out_path is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out_path = RESULTS_DIR / "bench_serving.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload, Path(out_path)


def check_rows(rows, *, quick=False):
    """Perf guards (correctness guards run inside measure)."""
    for row in rows:
        assert row["warm_speedup_p50"] >= 20.0, (
            f"{row['graph']}: warm served query only "
            f"{row['warm_speedup_p50']}x faster than a cold CLI "
            f"invocation at p50 (acceptance bar is 20x)"
        )
        stream = row["delta_stream"]
        assert stream["sustained_qps"] > 0, (
            f"{row['graph']}: readers starved during the delta stream"
        )
        assert stream["final_version"] == stream["deltas"] + 1
    if quick or not BASELINE_PATH.exists():
        return
    baseline = json.loads(BASELINE_PATH.read_text())
    base_rows = {r["graph"]: r for r in baseline["workloads"]}
    for row in rows:
        base = base_rows.get(row["graph"])
        if base is None:
            continue
        assert row["warm_speedup_p50"] >= 0.5 * base["warm_speedup_p50"], (
            f"{row['graph']}: warm speedup {row['warm_speedup_p50']}x "
            f"fell to less than half the committed "
            f"{base['warm_speedup_p50']}x"
        )


def test_serving_smoke(results_dir):
    payload, _ = run_bench(quick=False)
    print(json.dumps(payload, indent=2))
    check_rows(payload["workloads"], quick=False)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small graph — the CI smoke configuration",
    )
    parser.add_argument(
        "--out", default=None, help="output JSON path (default: results/)"
    )
    args = parser.parse_args(argv)
    payload, out_path = run_bench(quick=args.quick, out_path=args.out)
    print(json.dumps(payload, indent=2))
    check_rows(payload["workloads"], quick=args.quick)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
