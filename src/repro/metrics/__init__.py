"""Measurement and instrumentation.

Everything the evaluation section needs to quantify:

* :mod:`repro.metrics.teps` — the paper's TEPS_BC = n·m/t search rate
  (Tables 2/3);
* :mod:`repro.metrics.redundancy` — partial/total redundancy
  accounting (Figure 7);
* :mod:`repro.metrics.breakdown` — APGRE phase timing shares
  (Figure 8);
* :mod:`repro.metrics.stats` — graph and partition statistics
  (Tables 1/4);
* :mod:`repro.metrics.timers` — tiny wall-clock helpers.
"""

from repro.metrics.teps import mteps, teps
from repro.metrics.redundancy import RedundancyBreakdown, measure_redundancy
from repro.metrics.breakdown import phase_breakdown
from repro.metrics.stats import (
    GraphStats,
    PartitionStats,
    SubgraphRow,
    graph_stats,
    partition_stats,
)
from repro.metrics.comparison import (
    ScoreComparison,
    compare_scores,
    kendall_tau,
    top_k_overlap,
)
from repro.metrics.timers import Timer, stopwatch

__all__ = [
    "teps",
    "mteps",
    "RedundancyBreakdown",
    "measure_redundancy",
    "phase_breakdown",
    "GraphStats",
    "PartitionStats",
    "SubgraphRow",
    "graph_stats",
    "partition_stats",
    "ScoreComparison",
    "compare_scores",
    "kendall_tau",
    "top_k_overlap",
    "Timer",
    "stopwatch",
]
