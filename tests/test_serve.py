"""Tests for the warm-path serving daemon (repro.serve).

The serving PR's acceptance guards live here:

* served results are **bit-identical** to :func:`apgre_bc_detailed`
  for the same config across serial / threads / cached / compressed /
  sharded request parameters;
* concurrent readers racing ``POST /delta`` always observe a single
  consistent committed version (every response's scores match the
  Brandes oracle of *its reported version's* graph to 1e-9);
* ``/stats`` keeps exact edge-tally accounting (traversed vs
  replayed) across cold, warm-LRU and store-replay requests;
* SIGTERM drains the daemon cleanly with exit code 0.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import networkx as nx
import numpy as np
import pytest

from repro.baselines.brandes import brandes_bc
from repro.cache.store import ContributionStore
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.errors import ServeError
from repro.graph.build import from_networkx
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    RequestParams,
    build_config,
    config_fingerprint,
    parse_delta_body,
)
from repro.serve.score_lru import ScoreLRU
from repro.serve.server import make_server
from repro.serve.snapshots import SnapshotManager


def _serve_graph():
    """A K6 core, a K4 satellite and a bridge path: several BCCs, two
    articulation chains — deltas stay local, partitions non-trivial."""
    g = nx.complete_graph(6)
    g.update(
        nx.relabel_nodes(nx.complete_graph(4), {i: 10 + i for i in range(4)})
    )
    g.add_edges_from([(5, 6), (6, 7), (7, 10), (3, 8), (8, 9)])
    return from_networkx(g, n=14)


@pytest.fixture
def graph():
    return _serve_graph()


class _Served:
    """An in-process daemon plus a client, shut down on fixture exit."""

    def __init__(self, graph, **kwargs):
        self.store = kwargs.pop("store", ContributionStore())
        base = kwargs.pop(
            "base_config", APGREConfig(cache=self.store)
        )
        self.server = make_server(
            graph, port=0, base_config=base, store=self.store, **kwargs
        )
        self.state = self.server.state
        self.graph = graph
        host, port = self.server.server_address
        self.client = ServeClient(host=host, port=port, timeout=60.0)
        self.thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.02},
        )
        self.thread.start()

    def close(self):
        self.server.shutdown()
        self.thread.join(timeout=30)
        self.server.server_close()


@pytest.fixture
def served(graph):
    box = _Served(graph)
    yield box
    box.close()


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestSnapshotManager:
    def test_versions_are_monotonic(self, graph):
        mgr = SnapshotManager(graph)
        assert mgr.version == 1
        snap2 = mgr.advance(graph)
        snap3 = mgr.advance(graph)
        assert (snap2.version, snap3.version) == (2, 3)
        assert mgr.version == 3

    def test_unpinned_version_retires_on_advance(self, graph):
        retired = []
        mgr = SnapshotManager(graph, on_retire=retired.append)
        mgr.advance(graph)
        assert retired == [1]
        with pytest.raises(ServeError) as err:
            mgr.get(1)
        assert err.value.http_status == 409

    def test_pinned_version_survives_until_reader_drains(self, graph):
        retired = []
        mgr = SnapshotManager(graph, on_retire=retired.append)
        with mgr.acquire() as snap:
            assert snap.version == 1
            mgr.advance(graph)
            # the reader still holds v1: it must stay resident
            assert retired == []
            assert mgr.get(1) is snap
        # last reader drained: now it retires
        assert retired == [1]

    def test_acquire_specific_version(self, graph):
        mgr = SnapshotManager(graph)
        with mgr.acquire():
            mgr.advance(graph)
        with mgr.acquire(2) as snap:
            assert snap.version == 2
        with pytest.raises(ServeError):
            with mgr.acquire(1):
                pass

    def test_partition_memoised_per_config_key(self, graph):
        mgr = SnapshotManager(graph)
        snap = mgr.current()
        a = snap.partition_for(APGREConfig())
        b = snap.partition_for(APGREConfig())
        assert a is b
        c = snap.partition_for(APGREConfig(threshold=0))
        assert c is not a
        assert len(snap.partition_keys()) == 2

    def test_report_shape(self, graph):
        mgr = SnapshotManager(graph)
        report = mgr.report()
        assert report["version"] == 1
        assert report["live_versions"] == [1]
        assert report["deltas_applied"] == 0


# ----------------------------------------------------------------------
# score LRU
# ----------------------------------------------------------------------
class TestScoreLRU:
    def test_roundtrip_and_frozen(self):
        lru = ScoreLRU()
        lru.put(1, "fp", np.arange(4.0), {"src": "test"})
        entry = lru.get(1, "fp")
        assert entry is not None
        assert not entry.scores.flags.writeable
        assert entry.meta["src"] == "test"
        assert lru.get(1, "other") is None
        assert lru.stats()["hits"] == 1
        assert lru.stats()["misses"] == 1

    def test_entry_budget_evicts_lru_first(self):
        lru = ScoreLRU(max_entries=2)
        lru.put(1, "a", np.zeros(4))
        lru.put(1, "b", np.zeros(4))
        lru.get(1, "a")  # bump a: b is now least recent
        lru.put(1, "c", np.zeros(4))
        assert lru.get(1, "b") is None
        assert lru.get(1, "a") is not None
        assert lru.stats()["evictions"] == 1

    def test_byte_budget(self):
        lru = ScoreLRU(max_bytes=100)
        lru.put(1, "a", np.zeros(8))  # 64 bytes
        lru.put(1, "b", np.zeros(8))
        assert len(lru) == 1
        # a single oversized vector is still admitted and served
        lru.put(1, "big", np.zeros(64))
        assert lru.get(1, "big") is not None

    def test_purge_version(self):
        lru = ScoreLRU()
        lru.put(1, "a", np.zeros(4))
        lru.put(1, "b", np.zeros(4))
        lru.put(2, "a", np.zeros(4))
        assert lru.purge_version(1) == 2
        assert lru.get(1, "a") is None
        assert lru.get(2, "a") is not None
        assert lru.stats()["purged"] == 2

    def test_invalid_budgets_raise(self):
        with pytest.raises(ServeError):
            ScoreLRU(max_entries=0)
        with pytest.raises(ServeError):
            ScoreLRU(max_bytes=0)


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def _params(self, qs: dict) -> RequestParams:
        return RequestParams.from_query(
            {k: [v] for k, v in qs.items()}
        )

    def test_parse_types(self):
        params = self._params(
            {
                "backend": "threads",
                "kernel": "arcs",
                "batch_size": "auto",
                "workers": "2",
                "steal": "0",
                "compress": "true",
                "top": "5",
                "full": "1",
                "fresh": "yes",
                "version": "3",
                "timeout": "1.5",
            }
        )
        assert params.backend == "threads"
        assert params.kernel == "arcs"
        assert params.batch_size == "auto"
        assert params.workers == 2
        assert params.steal is False
        assert params.compress is True
        assert (params.top, params.full, params.fresh) == (5, True, True)
        assert params.version == 3
        assert params.timeout == 1.5

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ServeError, match="unknown parameter"):
            self._params({"bogus": "1"})

    def test_repeated_parameter_rejected(self):
        with pytest.raises(ServeError, match="given 2 times"):
            RequestParams.from_query({"top": ["1", "2"]})

    def test_bad_values_rejected(self):
        for qs in (
            {"backend": "gpu"},
            {"kernel": "cuda"},
            {"steal": "maybe"},
            {"workers": "two"},
            {"top": "0"},
            {"batch_size": "0"},
        ):
            with pytest.raises(ServeError):
                self._params(qs)

    def test_fingerprint_covers_score_affecting_fields(self):
        base = APGREConfig()
        assert config_fingerprint(base) == config_fingerprint(APGREConfig())
        for variant in (
            APGREConfig(threshold=0),
            APGREConfig(compress=True),
            APGREConfig(shard=True, shard_max_size=16),
            APGREConfig(kernel="arcs"),
            APGREConfig(backend="threads", workers=2),
            APGREConfig(eliminate_pendants=False),
        ):
            assert config_fingerprint(variant) != config_fingerprint(base)

    def test_fingerprint_ignores_supervisor_budgets(self):
        base = APGREConfig()
        tuned = APGREConfig(timeout=5.0, max_retries=0, fallback=False)
        assert config_fingerprint(tuned) == config_fingerprint(base)

    def test_build_config_routes_the_store(self):
        store = ContributionStore()
        base = APGREConfig(cache=store)
        config = build_config(RequestParams(), base, store)
        assert config.cache is store
        off = build_config(RequestParams(cache=False), base, store)
        assert off.cache is None

    def test_build_config_validation_is_a_400(self):
        store = ContributionStore()
        with pytest.raises(ServeError) as err:
            build_config(
                RequestParams(workers=0), APGREConfig(), store
            )
        assert err.value.http_status == 400

    def test_parse_delta_body_json(self):
        added, removed = parse_delta_body(
            json.dumps({"add": [[0, 3]], "remove": [[1, 2]]}).encode(),
            "application/json",
        )
        np.testing.assert_array_equal(added, [[0, 3]])
        np.testing.assert_array_equal(removed, [[1, 2]])

    def test_parse_delta_body_text(self):
        added, removed = parse_delta_body(
            b"+ 0 3\n- 1 2\n", "text/plain"
        )
        np.testing.assert_array_equal(added, [[0, 3]])
        np.testing.assert_array_equal(removed, [[1, 2]])

    def test_parse_delta_body_rejects_garbage(self):
        with pytest.raises(ServeError):
            parse_delta_body(b"{not json", "application/json")
        with pytest.raises(ServeError):
            parse_delta_body(b'{"explode": []}', "application/json")
        with pytest.raises(ServeError):
            parse_delta_body(b"bogus line\n", "text/plain")
        with pytest.raises(ServeError):
            parse_delta_body(b"\xff\xfe", "text/plain")


# ----------------------------------------------------------------------
# endpoints
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_healthz(self, served):
        payload = served.client.healthz()
        assert payload["status"] == "ok"
        assert payload["version"] == 1
        assert payload["draining"] is False

    def test_bc_top_and_lru_hit(self, served):
        first = served.client.bc(top=3)
        assert first["cached"] is False
        assert len(first["top"]) == 3
        second = served.client.bc(top=3)
        assert second["cached"] is True
        assert second["top"] == first["top"]
        assert served.state.computed_vectors == 1

    def test_bc_full_bit_identical_to_local(self, served):
        payload = served.client.bc(full=True)
        local = apgre_bc_detailed(
            served.graph, APGREConfig(cache=ContributionStore())
        )
        assert np.array_equal(
            np.asarray(payload["scores"]), local.scores
        ), "served full vector differs from a local run"

    def test_vertex_matches_full_vector(self, served):
        full = np.asarray(served.client.bc(full=True)["scores"])
        for v in (0, 5, 7, 13):
            payload = served.client.vertex(v)
            assert payload["score"] == full[v]
            assert payload["vertex"] == v

    def test_vertex_out_of_range_is_404(self, served):
        with pytest.raises(ServeError) as err:
            served.client.vertex(99)
        assert err.value.http_status == 404

    def test_vertex_non_integer_is_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client.request("GET", "/vertex/zero")
        assert err.value.http_status == 400

    def test_unknown_path_is_404(self, served):
        with pytest.raises(ServeError) as err:
            served.client.request("GET", "/nope")
        assert err.value.http_status == 404

    def test_unknown_parameter_is_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client.bc(bogus=1)
        assert err.value.http_status == 400

    def test_concurrent_identical_requests_collapse(self, served):
        results = []

        def read():
            results.append(served.client.bc(top=4))

        threads = [threading.Thread(target=read) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 6
        tops = {json.dumps(r["top"]) for r in results}
        assert len(tops) == 1
        # singleflight: identical in-flight queries compute at most once
        assert served.state.computed_vectors == 1

    def test_stats_edge_tally_accounting(self, served):
        cold = served.client.bc(top=1)
        local = apgre_bc_detailed(
            served.graph, APGREConfig(cache=ContributionStore())
        )
        stats = served.client.stats()
        assert (
            stats["edges"]["traversed"] == local.stats.edges_traversed
        ), "served cold traversal tally differs from a local cold run"
        assert stats["edges"]["replayed"] == 0
        # an LRU hit does no graph work at all: tallies must not move
        warm = served.client.bc(top=1)
        assert warm["cached"] is True
        stats = served.client.stats()
        assert stats["edges"]["traversed"] == local.stats.edges_traversed
        assert stats["edges"]["replayed"] == 0
        # fresh=1 bypasses the LRU: the ContributionStore replays every
        # contribution, and the tally is accounted as replayed edges
        fresh = served.client.bc(top=1, fresh=True)
        assert fresh["cached"] is False
        assert fresh["top"] == cold["top"]
        stats = served.client.stats()
        assert stats["edges"]["traversed"] == local.stats.edges_traversed
        assert stats["edges"]["replayed"] == local.stats.edges_traversed

    def test_stats_surface(self, served):
        served.client.bc(top=2)
        stats = served.client.stats()
        assert stats["graph"]["version"] == 1
        assert stats["graph"]["vertices"] == served.graph.n
        assert stats["server"]["requests"]["bc"] == 1
        assert stats["score_lru"]["puts"] == 1
        assert stats["contribution_store"]["puts"] > 0
        assert "backends" in stats["registries"]
        assert "kernels" in stats["registries"]
        assert stats["health"]["degraded"] is False
        assert stats["snapshots"]["live_versions"] == [1]
        # the registries block is exactly repro-bc info --json's
        from repro.introspect import registry_payload

        assert stats["registries"] == registry_payload()

    def test_delta_text_and_json(self, served):
        first = served.client.delta(text="+ 0 9\n")
        assert (first["from_version"], first["version"]) == (1, 2)
        second = served.client.delta(remove=[(0, 9)])
        assert second["version"] == 3
        # back at the original graph: scores must match version 1's
        final = served.client.bc(full=True)
        assert final["version"] == 3
        local = apgre_bc_detailed(
            served.graph, APGREConfig(cache=ContributionStore())
        )
        np.testing.assert_allclose(
            np.asarray(final["scores"]), local.scores,
            rtol=1e-9, atol=1e-9,
        )

    def test_delta_primes_the_new_version(self, served):
        served.client.delta(add=[(0, 9)])
        payload = served.client.bc(top=2)
        assert payload["version"] == 2
        assert payload["cached"] is True  # admitted by the delta path

    def test_empty_delta_is_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client.delta(text="# nothing\n")
        assert err.value.http_status == 400

    def test_delta_removing_absent_edge_is_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client.delta(remove=[(0, 13)])
        assert err.value.http_status == 400
        assert served.client.healthz()["version"] == 1  # nothing committed
        assert served.client.stats()["server"]["deltas_rejected"] == 1

    def test_retired_version_is_409(self, served):
        served.client.delta(add=[(0, 9)])
        with pytest.raises(ServeError) as err:
            served.client.bc(version=1)
        assert err.value.http_status == 409
        assert served.client.bc(version=2)["version"] == 2

    def test_cache_free_daemon_rejects_deltas(self, graph):
        box = _Served(
            graph, store=None, base_config=APGREConfig()
        )
        try:
            assert box.client.bc(top=2)["cached"] is False
            with pytest.raises(ServeError) as err:
                box.client.delta(add=[(0, 9)])
            assert err.value.http_status == 409
        finally:
            box.close()

    def test_unix_socket_server(self, graph, tmp_path):
        path = str(tmp_path / "bc.sock")
        store = ContributionStore()
        server = make_server(
            graph,
            unix_socket=path,
            base_config=APGREConfig(cache=store),
            store=store,
        )
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.02}
        )
        thread.start()
        try:
            client = ServeClient(unix_socket=path)
            assert client.healthz()["status"] == "ok"
            assert len(client.bc(top=3)["top"]) == 3
        finally:
            server.shutdown()
            thread.join(timeout=30)
            server.server_close()
        assert not os.path.exists(path)  # closed daemon unlinks its socket


# ----------------------------------------------------------------------
# bit-identity matrix (acceptance)
# ----------------------------------------------------------------------
class TestBitIdentityMatrix:
    """Served bytes == local bytes for the same config, per path.

    ``fresh=1`` forces each request through a real compute (no LRU
    read), so the comparison exercises the serving execution path, not
    a memoised vector.  ``steal=0`` keeps the threads backend on its
    deterministic static LPT placement.
    """

    CASES = [
        ("serial", {}, {}),
        ("cached-replay", {"fresh": True}, {}),
        ("compressed", {"compress": True}, {"compress": True}),
        (
            "sharded",
            {"shard": True, "shard_max_size": 16},
            {"shard": True, "shard_max_size": 16},
        ),
        (
            "threads",
            {"backend": "threads", "workers": 2, "steal": False},
            {"backend": "threads", "workers": 2, "steal": False},
        ),
        ("batched", {"batch_size": "auto"}, {"batch_size": "auto"}),
        ("kernel-arcs", {"kernel": "arcs"}, {"kernel": "arcs"}),
    ]

    @pytest.mark.parametrize(
        "label,params,cfg", CASES, ids=[c[0] for c in CASES]
    )
    def test_served_equals_local(self, served, label, params, cfg):
        payload = served.client.bc(full=True, **params)
        local = apgre_bc_detailed(
            served.graph,
            APGREConfig(cache=ContributionStore(), **cfg),
        )
        assert np.array_equal(
            np.asarray(payload["scores"]), local.scores
        ), f"{label}: served scores differ from the local run"


# ----------------------------------------------------------------------
# concurrent readers vs streamed deltas (acceptance)
# ----------------------------------------------------------------------
class TestConcurrentDeltaConsistency:
    @pytest.mark.timeout(300)
    def test_readers_always_see_one_committed_version(self, served):
        """Readers racing a delta stream never see a torn update.

        A writer streams single-edge deltas while reader threads pull
        full vectors.  Every response names the version it was served
        from; replaying the delta log locally gives each version's
        graph, and every response must match the Brandes oracle of
        *its own* version to 1e-9 — a reader observing any blend of
        two versions fails against every oracle.
        """
        deltas = [(0, 9), (1, 12), (2, 8), (4, 9)]
        observations = []
        failures = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    payload = served.client.bc(full=True, fresh=True)
                except ServeError as exc:  # pragma: no cover - fatal
                    failures.append(exc)
                    return
                observations.append(
                    (payload["version"], payload["scores"])
                )

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for t in readers:
            t.start()
        try:
            for edge in deltas:
                time.sleep(0.05)
                served.client.delta(add=[edge])
        finally:
            stop.set()
            for t in readers:
                t.join(timeout=60)
        assert not failures, f"reader failed: {failures[0]}"
        assert observations, "readers never completed a request"

        # rebuild every committed version's graph from the delta log
        from repro.cache.incremental import apply_edge_delta

        graphs = {1: served.graph}
        g = served.graph
        for i, edge in enumerate(deltas):
            g = apply_edge_delta(g, edges_added=[edge])
            graphs[i + 2] = g
        oracles = {}
        seen_versions = set()
        for version, scores in observations:
            assert version in graphs, f"impossible version {version}"
            seen_versions.add(version)
            if version not in oracles:
                oracles[version] = brandes_bc(graphs[version])
            np.testing.assert_allclose(
                np.asarray(scores), oracles[version],
                rtol=1e-9, atol=1e-9,
                err_msg=f"reader saw inconsistent scores at v{version}",
            )
        final = served.client.bc(full=True)
        assert final["version"] == len(deltas) + 1


# ----------------------------------------------------------------------
# CLI daemon lifecycle (drain on SIGTERM)
# ----------------------------------------------------------------------
class TestServeCLI:
    @pytest.mark.timeout(180)
    def test_sigterm_drains_cleanly_exit_zero(self, tmp_path):
        graph_path = tmp_path / "g.txt"
        lines = []
        g = _serve_graph()
        src = np.repeat(np.arange(g.n), np.diff(g.out_indptr))
        for u, v in zip(src.tolist(), g.out_indices.tolist()):
            if u < v:
                lines.append(f"{u} {v}")
        graph_path.write_text("\n".join(lines) + "\n")
        sock = str(tmp_path / "bc.sock")
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[1]
        env["PYTHONPATH"] = os.pathsep.join(
            [str(root / "src"), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                str(graph_path), "--unix-socket", sock,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            deadline = time.time() + 60
            while not os.path.exists(sock):
                assert proc.poll() is None, (
                    f"daemon died early:\n{proc.stdout.read()}"
                )
                assert time.time() < deadline, "daemon never bound"
                time.sleep(0.05)
            client = ServeClient(unix_socket=sock)
            assert client.healthz()["status"] == "ok"
            payload = client.bc(top=3)
            assert len(payload["top"]) == 3
            delta = client.delta(text="+ 0 9\n")
            assert delta["version"] == 2
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, f"drain exit {proc.returncode}:\n{out}"
        assert "drained cleanly" in out
        assert "final version 2" in out
        assert not os.path.exists(sock)
