"""Tests for weighted APGRE (repro.core.weighted_apgre)."""

import numpy as np
import networkx as nx
import pytest

from repro.baselines import brandes_bc, weighted_brandes_bc
from repro.core.apgre import apgre_bc
from repro.core.weighted_apgre import subgraph_weights, weighted_apgre_bc
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition
from repro.errors import AlgorithmError, GraphValidationError
from repro.graph.build import from_edges, from_networkx


def symmetric_weights(g, rng, lo=1, hi=7):
    """Random integer weights, equal across both arc orientations."""
    w = rng.integers(lo, hi, size=g.num_arcs).astype(float)
    if not g.directed:
        src, dst = g.arcs()
        first = {}
        for i, (u, v) in enumerate(zip(src.tolist(), dst.tolist())):
            key = (min(u, v), max(u, v))
            if key in first:
                w[i] = w[first[key]]
            else:
                first[key] = i
    return w


def pendant_graph(seed, directed):
    rng = np.random.default_rng(seed)
    nxg = nx.gnm_random_graph(20, 32, seed=seed, directed=directed)
    nid = 20
    for _ in range(6):
        anchor = int(rng.integers(0, 20))
        if directed:
            nxg.add_edge(nid, anchor)
        else:
            nxg.add_edge(anchor, nid)
        nid += 1
    return from_networkx(nxg, n=nid)


class TestExactness:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("directed", [False, True])
    def test_matches_weighted_brandes(self, seed, directed):
        g = pendant_graph(seed, directed)
        rng = np.random.default_rng(seed + 100)
        w = symmetric_weights(g, rng)
        np.testing.assert_allclose(
            weighted_apgre_bc(g, w),
            weighted_brandes_bc(g, w),
            rtol=1e-9,
            atol=1e-8,
        )

    def test_unit_weights_match_unweighted_apgre(self, zoo_entry):
        name, g, _nxg = zoo_entry
        if g.n > 30:
            return  # Dijkstra backward is per-vertex Python
        np.testing.assert_allclose(
            weighted_apgre_bc(g),
            apgre_bc(g),
            rtol=1e-9,
            atol=1e-8,
            err_msg=name,
        )

    def test_matches_networkx_weighted(self):
        rng = np.random.default_rng(3)
        nxg = nx.gnm_random_graph(18, 32, seed=3)
        for u, v in nxg.edges():
            nxg[u][v]["weight"] = float(rng.integers(1, 6))
        g = from_networkx(nxg, n=18)
        src, dst = g.arcs()
        w = np.asarray(
            [nxg[int(u)][int(v)]["weight"] for u, v in zip(src, dst)]
        )
        raw = nx.betweenness_centrality(nxg, normalized=False, weight="weight")
        expected = np.zeros(18)
        for v, val in raw.items():
            expected[v] = 2 * val  # ordered-pair convention
        np.testing.assert_allclose(
            weighted_apgre_bc(g, w), expected, rtol=1e-9, atol=1e-8
        )

    def test_weights_reroute_through_articulation(self):
        # two triangles joined at articulation point 2; a heavy edge
        # inside one triangle changes within-triangle scores but the
        # decomposition must stay exact
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]
        g = from_edges(edges)
        w = np.ones(g.num_arcs)
        src, dst = g.arcs()
        heavy = ((src == 0) & (dst == 1)) | ((src == 1) & (dst == 0))
        w[heavy] = 10.0
        np.testing.assert_allclose(
            weighted_apgre_bc(g, w),
            weighted_brandes_bc(g, w),
            rtol=1e-9,
        )

    @pytest.mark.parametrize("threshold", [0, 4, 1000])
    def test_threshold_independence(self, threshold):
        g = pendant_graph(7, False)
        rng = np.random.default_rng(7)
        w = symmetric_weights(g, rng)
        np.testing.assert_allclose(
            weighted_apgre_bc(g, w, threshold=threshold),
            weighted_brandes_bc(g, w),
            rtol=1e-9,
            atol=1e-8,
        )

    def test_fractional_weights(self):
        g = pendant_graph(11, False)
        rng = np.random.default_rng(11)
        w = symmetric_weights(g, rng).astype(float) * 0.25 + 0.1
        # re-symmetrise after transform (affine keeps symmetry)
        np.testing.assert_allclose(
            weighted_apgre_bc(g, w),
            weighted_brandes_bc(g, w),
            rtol=1e-8,
            atol=1e-7,
        )


class TestValidation:
    def test_rejects_nonpositive(self):
        g = from_edges([(0, 1)])
        with pytest.raises(AlgorithmError, match="positive"):
            weighted_apgre_bc(g, np.asarray([1.0, 0.0]))

    def test_rejects_bad_shape(self):
        g = from_edges([(0, 1)])
        with pytest.raises(GraphValidationError, match="per arc"):
            weighted_apgre_bc(g, np.ones(7))

    def test_partition_reuse(self):
        g = pendant_graph(2, False)
        rng = np.random.default_rng(2)
        w = symmetric_weights(g, rng)
        partition = graph_partition(g)
        compute_alpha_beta(g, partition)
        a = weighted_apgre_bc(g, w, partition=partition)
        b = weighted_apgre_bc(g, w)
        np.testing.assert_allclose(a, b, rtol=1e-12)


class TestSubgraphWeights:
    def test_maps_arcs_correctly(self):
        g = from_edges([(0, 1), (1, 2), (2, 0), (2, 3)], directed=True)
        w = np.asarray([1.0, 2.0, 3.0, 4.0])
        partition = graph_partition(g, threshold=0)
        for sg in partition.subgraphs:
            local_w = subgraph_weights(g, sg, w)
            lsrc, ldst = sg.graph.arcs()
            for i, (u, v) in enumerate(zip(lsrc.tolist(), ldst.tolist())):
                gu, gv = int(sg.vertices[u]), int(sg.vertices[v])
                src, dst = g.arcs()
                pos = [
                    j
                    for j, (a, b) in enumerate(
                        zip(src.tolist(), dst.tolist())
                    )
                    if (a, b) == (gu, gv)
                ]
                assert local_w[i] == w[pos[0]]
