"""Tests for score comparison metrics and binary graph serialisation."""

import numpy as np
import pytest

from repro.errors import BenchmarkError, GraphFormatError
from repro.generators import analogue_graph, cycle_graph
from repro.graph.build import from_edges
from repro.io.binary import load_npz, save_npz
from repro.metrics.comparison import (
    compare_scores,
    kendall_tau,
    top_k_overlap,
)


class TestTopKOverlap:
    def test_identical(self):
        a = np.asarray([5.0, 3.0, 1.0, 0.0])
        assert top_k_overlap(a, a, 2) == 1.0

    def test_disjoint(self):
        a = np.asarray([9.0, 8.0, 0.0, 0.0])
        b = np.asarray([0.0, 0.0, 8.0, 9.0])
        assert top_k_overlap(a, b, 2) == 0.0

    def test_partial(self):
        a = np.asarray([9.0, 8.0, 1.0, 0.0])
        b = np.asarray([9.0, 0.0, 8.0, 0.0])
        # top-2 sets {0,1} vs {0,2}: Jaccard 1/3
        assert top_k_overlap(a, b, 2) == pytest.approx(1 / 3)

    def test_k_clamped(self):
        a = np.asarray([1.0, 2.0])
        assert top_k_overlap(a, a, 100) == 1.0

    def test_invalid_k(self):
        with pytest.raises(BenchmarkError, match="positive"):
            top_k_overlap(np.ones(3), np.ones(3), 0)


class TestKendall:
    def test_perfect_agreement(self):
        a = np.asarray([1.0, 2.0, 3.0, 4.0])
        assert kendall_tau(a, a * 10) == pytest.approx(1.0)

    def test_perfect_reversal(self):
        a = np.asarray([1.0, 2.0, 3.0, 4.0])
        assert kendall_tau(a, -a) == pytest.approx(-1.0)

    def test_length_mismatch(self):
        with pytest.raises(BenchmarkError, match="equal length"):
            kendall_tau(np.ones(3), np.ones(4))

    def test_tiny(self):
        assert kendall_tau(np.ones(1), np.ones(1)) == 1.0


class TestCompareScores:
    def test_identical_scores(self):
        a = np.asarray([3.0, 1.0, 0.0, 7.0])
        cmp = compare_scores(a, a)
        assert cmp.exact_match
        assert cmp.pearson == pytest.approx(1.0)
        assert cmp.kendall == pytest.approx(1.0)
        assert cmp.top10_overlap == 1.0

    def test_scaled_scores_rank_preserved(self):
        a = np.asarray([3.0, 1.0, 0.5, 7.0])
        cmp = compare_scores(a, 2 * a)
        assert not cmp.exact_match
        assert cmp.kendall == pytest.approx(1.0)
        assert cmp.max_rel_diff == pytest.approx(1.0)

    def test_constant_reference(self):
        a = np.zeros(5)
        cmp = compare_scores(a, a)
        assert cmp.pearson == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(BenchmarkError, match="shape"):
            compare_scores(np.ones(3), np.ones(4))

    def test_empty(self):
        cmp = compare_scores(np.zeros(0), np.zeros(0))
        assert cmp.exact_match

    def test_sampling_quality_end_to_end(self):
        from repro.baselines import brandes_bc, sampling_bc

        g = analogue_graph("Email-Enron", scale=0.3)
        exact = brandes_bc(g)
        est = sampling_bc(g, k=max(g.n // 5, 1), seed=2)
        cmp = compare_scores(exact, est)
        assert cmp.pearson > 0.8
        assert cmp.top10_overlap > 0.3


class TestBinaryIO:
    def test_roundtrip_undirected(self, tmp_path):
        g = cycle_graph(9)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        assert load_npz(path) == g

    def test_roundtrip_directed(self, tmp_path):
        g = from_edges([(0, 1), (1, 2), (2, 0), (3, 1)], directed=True)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded == g
        assert loaded.directed
        assert np.array_equal(loaded.in_indptr, g.in_indptr)

    def test_roundtrip_suite_graph(self, tmp_path):
        g = analogue_graph("WikiTalk", scale=0.3)
        path = tmp_path / "wiki.npz"
        save_npz(g, path)
        assert load_npz(path) == g

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, version=np.asarray(1))
        with pytest.raises(GraphFormatError, match="missing field"):
            load_npz(path)

    def test_bad_version(self, tmp_path):
        g = cycle_graph(4)
        path = tmp_path / "g.npz"
        np.savez(
            path,
            version=np.asarray(99),
            directed=np.asarray(False),
            n=np.asarray(g.n),
            out_indptr=g.out_indptr,
            out_indices=g.out_indices,
        )
        with pytest.raises(GraphFormatError, match="version"):
            load_npz(path)

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(GraphFormatError, match="cannot read"):
            load_npz(path)

    def test_tampered_arrays_rejected(self, tmp_path):
        g = cycle_graph(4)
        path = tmp_path / "g.npz"
        np.savez(
            path,
            version=np.asarray(1),
            directed=np.asarray(False),
            n=np.asarray(4),
            out_indptr=np.asarray([0, 2, 4, 6, 9]),  # inconsistent
            out_indices=g.out_indices,
        )
        from repro.errors import GraphValidationError

        with pytest.raises(GraphValidationError):
            load_npz(path)
