"""The exact per-shard BC kernel with boundary-correction sweeps.

One shard task owns the sources whose home is that shard and produces
a *full-length* local score vector; the ``k`` task vectors of one
sub-graph sum to exactly what :func:`repro.core.bc_subgraph.bc_subgraph`
computes (float64 tolerance).  Per home source ``s``:

1. **Shard sweep** — integer Dijkstra + one bucket-ordered DAG replay
   on the shard graph ``H_i`` whose weighted arcs carry per-arc path
   multiplicities ``μ``.  The four-dependency merge collapses into a
   single channel here: since ``δ_o2o ≡ β(s)·δ_i2o`` the per-vertex
   credit is ``c_s · (δ_i2i + δ_i2o)`` with
   ``c_s = 1 + γ(s) + β(s)·[s ∈ A]``, computed by one backward sweep
   over target masses ``w(t) = 1 + α(t)·[t ∈ A, t ≠ s]``.
2. **Exterior derivation** — distances/σ to every vertex *outside*
   the shard follow from the separator row of the sweep and the
   plan's barrier tables: ``d(t) = min_p d(p) + L_j(p, t)``.  Each
   separator vertex ``p`` is seeded with the dependency mass of the
   pairs exiting through it, so interior ancestors (and ``p`` itself)
   receive their cross-separator credit inside the same sweep.
3. **Correction bookkeeping** — the same derivation accumulates
   per-``(p, t)`` terminal masses, and the backward sweep captures
   the dependency flow crossing each weighted separator arc, split
   per realising shard.
4. **Correction sweeps** — per ``(shard j ≠ i, p)``, replay the
   plan's barrier DAG backward with those masses, crediting shard
   ``j``'s interior vertices: the dependency share of paths that
   merely *pass through* or *end beyond* the shard they live in
   (arXiv:1406.4173's boundary reconciliation).

Reached-vertex bookkeeping (articulation own-credit ``α``, the γ(s)
self term) mirrors ``bc_subgraph`` line by line; see that module's
docstring for the paper mapping.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter
from repro.decompose.partition import Subgraph
from repro.shard.plan import ShardGraph, ShardPlan
from repro.types import SCORE_DTYPE, VERTEX_DTYPE

__all__ = ["bc_subgraph_sharded", "shard_task_scores"]


def _h_sssp(h: ShardGraph, s: int) -> np.ndarray:
    """Shortest distances from ``s`` over the shard graph's arcs.

    scipy's Dijkstra over a min-reduced sparse matrix when available
    (parallel arcs keep their minimum length — the per-arc DAG test
    re-qualifies each arc individually); binary-heap fallback
    otherwise.  Lengths are small integers, exact in float64.
    """
    try:
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra
    except ImportError:  # pragma: no cover - minimal environments
        return _heap_sssp(h, s)
    if h._sssp_matrix is None:
        n = h.n
        key = h.src * n + h.dst
        order = np.argsort(key, kind="stable")
        ks = key[order]
        bounds = np.flatnonzero(np.concatenate(([True], np.diff(ks) > 0)))
        dedup = ks[bounds]
        h._sssp_matrix = csr_matrix(
            (
                np.minimum.reduceat(h.length[order], bounds),
                (dedup // n, dedup % n),
            ),
            shape=(n, n),
        )
    return dijkstra(h._sssp_matrix, directed=True, indices=s)


def _heap_sssp(h: ShardGraph, s: int) -> np.ndarray:
    dist = np.full(h.n, np.inf)
    dist[s] = 0.0
    adj: dict = {}
    for a, b, ln in zip(
        h.src.tolist(), h.dst.tolist(), h.length.tolist()
    ):
        adj.setdefault(a, []).append((b, ln))
    heap = [(0.0, s)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for w, ln in adj.get(v, ()):
            nd = d + ln
            if nd < dist[w]:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return dist


def shard_task_scores(
    sg: Subgraph,
    plan: ShardPlan,
    shard: int,
    *,
    eliminate_pendants: bool = True,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """One shard task's full-length local score vector.

    Sweeps the sources homed in ``shard`` on its shard graph and runs
    the correction sweeps their masses require; summing the vectors
    of all ``plan.k`` tasks reproduces ``bc_subgraph(sg)`` exactly.
    The returned vector spans *all* of ``sg`` — a task credits its own
    interior, the separator, and (through corrections and exterior
    α-credit) every other shard's interior.
    """
    g = sg.graph
    n = g.n
    undirected = not g.directed
    alpha = sg.alpha
    beta = sg.beta
    is_art = sg.is_boundary_art.astype(bool)
    if eliminate_pendants:
        gamma = sg.gamma
        roots = sg.roots
    else:
        gamma = np.zeros(n, dtype=SCORE_DTYPE)
        roots = np.arange(n, dtype=VERTEX_DTYPE)
    my_roots = plan.home_roots(roots, shard)
    bc = np.zeros(n, dtype=SCORE_DTYPE)
    h = plan.shard_graphs[shard]
    ext = plan.ext[shard]
    S = plan.num_separator
    n_h = h.n
    edges = 0

    h_id = np.full(n, -1, np.int64)
    h_id[h.verts] = np.arange(n_h)
    h_alpha = alpha[h.verts]
    h_art = is_art[h.verts]
    wmass_h = 1.0 + np.where(h_art, h_alpha, 0.0)
    ext_alpha = alpha[ext.verts]
    ext_art = is_art[ext.verts]
    ext_w = 1.0 + np.where(ext_art, ext_alpha, 0.0)
    n_ext = int(ext.verts.size)

    acc = np.zeros((S, n_ext))  # terminal masses for correction sweeps
    flow_w = np.zeros(h.n_w)  # dependency flow over weighted arcs

    for s in my_roots.tolist():
        s_h = int(h_id[s])
        dist = _h_sssp(h, s_h)
        finite = np.isfinite(dist)
        dag = finite[h.src] & (dist[h.src] + h.length == dist[h.dst])
        arc_ids = np.flatnonzero(dag)
        order = np.argsort(dist[h.dst[arc_ids]], kind="stable")
        arc_ids = arc_ids[order]
        a_src = h.src[arc_ids]
        a_dst = h.dst[arc_ids]
        a_mu = h.mu[arc_ids]
        w_pos = arc_ids - h.w_off  # >= 0 exactly for weighted arcs
        bounds = np.flatnonzero(
            np.concatenate(([True], np.diff(dist[a_dst]) > 0))
        )
        bounds = np.append(bounds, a_dst.size)
        edges += h.num_arcs + 2 * int(a_src.size)

        sigma = np.zeros(n_h)
        sigma[s_h] = 1.0
        for bi in range(bounds.size - 1):
            lo, hi = bounds[bi], bounds[bi + 1]
            np.add.at(
                sigma, a_dst[lo:hi], sigma[a_src[lo:hi]] * a_mu[lo:hi]
            )

        c_s = 1.0 + float(gamma[s]) + (
            float(beta[s]) if is_art[s] else 0.0
        )
        d_sep = dist[h.ni :]
        sig_sep = sigma[h.ni :]

        # exterior derivation: one (|S|, n_ext) pass per source
        if n_ext:
            cand = d_sep[:, None] + ext.L
            d_ext = cand.min(axis=0)
            fin_ext = np.isfinite(d_ext)
            ach = (cand == d_ext[None, :]) & fin_ext[None, :]
            sig_ext = np.where(
                ach, sig_sep[:, None] * ext.SIG, 0.0
            ).sum(axis=0)
            good = ach & (sig_ext > 0.0)[None, :]
            coef_t = np.zeros_like(cand)
            np.divide(
                ext.SIG * ext_w[None, :],
                sig_ext[None, :],
                out=coef_t,
                where=good,
            )
            coef_t[~good] = 0.0
            m_p = sig_sep * coef_t.sum(axis=1)
            acc += c_s * sig_sep[:, None] * coef_t
        else:
            fin_ext = np.zeros(0, bool)
            m_p = np.zeros(S)

        # backward sweep: target masses + exterior exit masses seeded
        # at the separator, flow over weighted arcs captured per arc
        tmass = wmass_h.copy()
        tmass[h.ni :] += m_p
        delta = np.zeros(n_h)
        for bi in range(bounds.size - 2, -1, -1):
            lo, hi = bounds[bi], bounds[bi + 1]
            bs, bd = a_src[lo:hi], a_dst[lo:hi]
            coef = sigma[bs] * a_mu[lo:hi] / sigma[bd]
            contrib = coef * (tmass[bd] + delta[bd])
            np.add.at(delta, bs, contrib)
            wk = w_pos[lo:hi]
            is_w = wk >= 0
            if is_w.any():
                np.add.at(flow_w, wk[is_w], c_s * contrib[is_w])

        # merge: reached H vertices, v != s; articulation points add
        # their own α credit, separator vertices their exit mass
        reached_h = finite.copy()
        reached_h[s_h] = False
        rh = np.flatnonzero(reached_h)
        contrib_h = delta[rh] + np.where(h_art[rh], h_alpha[rh], 0.0)
        exit_mass = np.zeros(n_h)
        exit_mass[h.ni :] = m_p
        np.add.at(bc, h.verts[rh], c_s * (contrib_h + exit_mass[rh]))
        if n_ext:
            re = np.flatnonzero(fin_ext & ext_art)
            np.add.at(bc, ext.verts[re], c_s * ext_alpha[re])

        # the γ(s) derived-pendant self term (bc_subgraph line 48)
        g_s = float(gamma[s])
        if g_s:
            reached_global = int(reached_h.sum()) + int(fin_ext.sum())
            art_alpha = float(h_alpha[rh[h_art[rh]]].sum())
            if n_ext:
                art_alpha += float(
                    ext_alpha[np.flatnonzero(fin_ext & ext_art)].sum()
                )
            self_i2o = art_alpha + (
                float(alpha[s]) if is_art[s] else 0.0
            )
            bc[s] += g_s * (
                reached_global
                - (1.0 if undirected else 0.0)
                + self_i2o
            )

    # correction sweeps: hand the accumulated terminal masses and
    # weighted-arc flows to the shards whose interiors realise them
    for j in range(plan.k):
        if j == shard:
            continue
        cols = np.flatnonzero(ext.shard_of == j)
        nj = int(plan.interiors[j].size)
        F = np.zeros((S, S))
        if h.n_w:
            F[h.w_p, h.w_q] = flow_w * h.w_share[:, j]
        for pi, dagrec in plan.bdags[j].items():
            tau = np.zeros(nj + S)
            if cols.size:
                tau[ext.tpos[cols]] = acc[pi, cols]
            tau[nj:] = F[pi]
            if not tau.any():
                continue
            delta_b = np.zeros(nj + S)
            sig_b = dagrec.sigma
            bnd = dagrec.bounds
            for bi in range(bnd.size - 2, -1, -1):
                lo, hi = bnd[bi], bnd[bi + 1]
                bs, bd = dagrec.src[lo:hi], dagrec.dst[lo:hi]
                np.add.at(
                    delta_b,
                    bs,
                    sig_b[bs] / sig_b[bd] * (tau[bd] + delta_b[bd]),
                )
            edges += int(dagrec.src.size)
            bc[plan.interiors[j]] += delta_b[:nj]

    if counter is not None:
        counter.add(edges)
    return bc


def bc_subgraph_sharded(
    sg: Subgraph,
    plan: ShardPlan,
    *,
    eliminate_pendants: bool = True,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """All shard tasks of one sub-graph, summed (the serial path)."""
    bc = np.zeros(sg.graph.n, dtype=SCORE_DTYPE)
    for shard in range(plan.k):
        bc += shard_task_scores(
            sg,
            plan,
            shard,
            eliminate_pendants=eliminate_pendants,
            counter=counter,
        )
    return bc
