#!/usr/bin/env python
"""Girvan–Newman community detection on top of APGRE vertex BC.

The paper motivates BC with community detection (§1, citing Girvan &
Newman). Classic Girvan–Newman removes high-*edge*-betweenness edges;
this example uses the closely related vertex variant: repeatedly remove
the highest-vertex-BC node until the target number of communities
appears — splitting a planted two-community graph at its bridge.

APGRE recomputes BC after every removal, which is exactly the
workload BC-based community detection generates (many exact BC runs on
a shrinking graph).

Run:  python examples/community_detection.py
"""

import numpy as np

from repro import apgre_bc
from repro.graph import CSRGraph, connected_components, from_edges
from repro.graph.ops import induced_subgraph
from repro.generators import gnm_random_graph
from repro.types import as_rng


def planted_two_communities(
    n_per_side: int, m_per_side: int, bridges: int, seed: int
) -> CSRGraph:
    """Two dense G(n,m) blobs joined through a short bridge path."""
    rng = as_rng(seed)
    left = gnm_random_graph(n_per_side, m_per_side, seed=rng)
    right = gnm_random_graph(n_per_side, m_per_side, seed=rng)
    edges = []
    for u, v in left.iter_edges():
        edges.append((u, v))
    for u, v in right.iter_edges():
        edges.append((u + n_per_side, v + n_per_side))
    # bridge vertices sit between the communities
    first_bridge = 2 * n_per_side
    for b in range(bridges):
        bv = first_bridge + b
        edges.append((int(rng.integers(0, n_per_side)), bv))
        edges.append((bv, int(rng.integers(n_per_side, 2 * n_per_side))))
    return from_edges(edges, n=2 * n_per_side + bridges, directed=False)


def girvan_newman_vertices(
    graph: CSRGraph, target_communities: int
) -> np.ndarray:
    """Remove max-BC vertices until the component count reaches target.

    Returns the component labels of the surviving vertices in the
    original numbering (-1 for removed vertices).
    """
    alive = np.arange(graph.n)
    work = graph
    labels_global = np.full(graph.n, -1, dtype=np.int64)
    while True:
        labels, k = connected_components(work)
        if k >= target_communities or work.n <= target_communities:
            labels_global[alive] = labels
            return labels_global
        scores = apgre_bc(work)
        victim = int(np.argmax(scores))
        keep = np.delete(np.arange(work.n), victim)
        work = induced_subgraph(work, keep)
        alive = alive[keep]


def main() -> None:
    graph = planted_two_communities(
        n_per_side=40, m_per_side=120, bridges=1, seed=7
    )
    print(f"planted graph: {graph} (two 40-vertex communities + 1 bridge)")

    labels = girvan_newman_vertices(graph, target_communities=2)
    # how pure are the two biggest recovered communities?
    sizes = np.bincount(labels[labels >= 0])
    big_two = np.argsort(-sizes)[:2]
    print(f"recovered communities (sizes): {np.sort(sizes)[::-1][:4]}")
    for c in big_two.tolist():
        members = np.flatnonzero(labels == c)
        left_share = float(np.mean(members < 40))
        side = "left" if left_share >= 0.5 else "right"
        purity = max(left_share, 1 - left_share)
        print(
            f"  community of {members.size:2d} vertices: {purity:.0%} "
            f"from the planted {side} side"
        )
    removed = int(np.sum(labels < 0))
    print(f"vertices removed before the split: {removed}")


if __name__ == "__main__":
    main()
