"""Edge-parallel conflict-free BC (the paper's ``lockSyncFree``).

Tan et al. (ICPP'09) partition the *edge set* so concurrent updates
never collide, removing lock synchronisation from both phases. The
array realisation scans the full arc list once per level and masks the
arcs crossing the current level boundary — every arc's contribution is
independent, i.e. the whole level is one conflict-free data-parallel
step. The extra full-arc scans per level make it the slowest exact
variant on high-diameter graphs (cf. the road-network rows of the
paper's Table 2, where ``lockSyncFree`` has no entry).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter, run_per_source
from repro.graph.csr import CSRGraph

__all__ = ["lockfree_bc"]


def lockfree_bc(
    graph: CSRGraph,
    *,
    workers: int = 1,
    counter: Optional[WorkCounter] = None,
) -> np.ndarray:
    """Exact BC with per-level full-edge scans (Tan et al.)."""
    return run_per_source(
        graph, mode="edge", workers=workers, counter=counter
    )
