"""Fault-injection suite: every supervisor failure path, deterministically.

Each test installs a :class:`repro.parallel.faults.FaultPlan` naming
exactly which task misbehaves on which attempt, runs a supervised
computation, and asserts both the *result* (complete, correct — for
APGRE bit-identical to the same fault-free run) and the *report*
(:class:`RunHealth` counters match the injected faults exactly).

Run in isolation with ``pytest -m faults``; the suite is also part of
the default run. Per-test alarms in conftest guarantee that a
regression reintroducing a hang fails fast instead of wedging CI.
"""

import numpy as np
import pytest

import networkx as nx

from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.errors import (
    ExecutionError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.graph.build import from_networkx
from repro.parallel.faults import (
    KILL_EXIT_CODE,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_faults,
    injected_faults,
    install_faults,
)
from repro.parallel.supervisor import (
    RunHealth,
    SupervisorConfig,
    supervised_map,
)

pytestmark = pytest.mark.faults

ALWAYS = tuple(range(16))  # fire on every plausible attempt


def _square(x):
    return x * x


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """No fault plan may leak between tests."""
    clear_faults()
    yield
    clear_faults()


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("explode", task=0)
        with pytest.raises(ValueError, match="task"):
            FaultSpec("kill", task=-1)

    def test_matching(self):
        plan = FaultPlan([FaultSpec("kill", task=2, attempts=(0, 1))])
        assert plan.find(2, 0) is not None
        assert plan.find(2, 1) is not None
        assert plan.find(2, 2) is None
        assert plan.find(1, 0) is None
        assert plan.find(2, 0, kinds=("delay",)) is None

    def test_install_and_clear(self):
        install_faults(FaultPlan([FaultSpec("kill", task=0)]))
        assert len(active_plan()) == 1
        clear_faults()
        assert active_plan() is None

    def test_context_manager_scopes_plan(self):
        with injected_faults(FaultSpec("delay", task=0, seconds=0)) as plan:
            assert active_plan() is plan
        assert active_plan() is None

    def test_kill_exit_code_distinctive(self):
        assert KILL_EXIT_CODE not in (0, 1, 2)


class TestWorkerCrash:
    def test_killed_worker_is_retried(self):
        health = RunHealth()
        with injected_faults(FaultSpec("kill", task=1)):
            out = supervised_map(
                _square, list(range(6)), workers=2, health=health
            )
        assert out == [i * i for i in range(6)]
        assert health.worker_crashes == 1
        assert health.retries == 1
        assert health.serial_retries == 0
        assert health.degraded

    def test_persistent_crash_resolves_on_serial_rung(self):
        health = RunHealth()
        with injected_faults(FaultSpec("kill", task=0, attempts=ALWAYS)):
            out = supervised_map(
                _square,
                list(range(4)),
                workers=2,
                health=health,
                config=SupervisorConfig(max_retries=1),
            )
        assert out == [0, 1, 4, 9]
        assert health.worker_crashes == 2  # first try + one retry
        assert health.serial_retries == 1
        outcome = next(o for o in health.outcomes if o.task == 0)
        assert outcome.status == "ok-serial"
        assert "crash" in outcome.events and "serial" in outcome.events

    def test_no_fallback_raises_worker_crash_error(self):
        with injected_faults(FaultSpec("kill", task=0, attempts=ALWAYS)):
            with pytest.raises(WorkerCrashError, match="task 0"):
                supervised_map(
                    _square,
                    list(range(4)),
                    workers=2,
                    config=SupervisorConfig(max_retries=0, fallback=False),
                )

    def test_unhealthy_pool_abandoned_and_drained_serially(self):
        specs = [
            FaultSpec("kill", task=t, attempts=ALWAYS) for t in range(6)
        ]
        health = RunHealth()
        with injected_faults(*specs):
            out = supervised_map(
                _square,
                list(range(8)),
                workers=2,
                health=health,
                config=SupervisorConfig(
                    max_retries=1, max_pool_failures=2
                ),
            )
        assert out == [i * i for i in range(8)]
        assert health.pool_abandoned
        assert health.drained_serial > 0
        assert "pool abandoned" in health.summary()


class TestTaskTimeout:
    def test_delayed_task_times_out_and_retry_succeeds(self):
        health = RunHealth()
        with injected_faults(FaultSpec("delay", task=0, seconds=60)):
            out = supervised_map(
                _square,
                list(range(4)),
                workers=2,
                health=health,
                config=SupervisorConfig(timeout=0.3),
            )
        assert out == [0, 1, 4, 9]
        assert health.timeouts == 1
        assert health.retries == 1

    def test_persistent_delay_resolves_on_serial_rung(self):
        health = RunHealth()
        with injected_faults(
            FaultSpec("delay", task=1, seconds=60, attempts=ALWAYS)
        ):
            out = supervised_map(
                _square,
                list(range(4)),
                workers=2,
                health=health,
                config=SupervisorConfig(timeout=0.3, max_retries=0),
            )
        assert out == [0, 1, 4, 9]
        assert health.timeouts == 1
        assert health.serial_retries == 1

    def test_no_fallback_raises_task_timeout_error(self):
        with injected_faults(
            FaultSpec("delay", task=0, seconds=60, attempts=ALWAYS)
        ):
            with pytest.raises(TaskTimeoutError, match="timeout"):
                supervised_map(
                    _square,
                    list(range(4)),
                    workers=2,
                    config=SupervisorConfig(
                        timeout=0.2, max_retries=0, fallback=False
                    ),
                )


class TestInWorkerFailures:
    def test_raise_fault_is_retried(self):
        health = RunHealth()
        with injected_faults(FaultSpec("raise", task=2)):
            out = supervised_map(
                _square, list(range(5)), workers=2, health=health
            )
        assert out == [i * i for i in range(5)]
        assert health.task_errors == 1
        assert health.retries == 1

    def test_persistent_raise_reraises_inline_with_original_type(self):
        with injected_faults(FaultSpec("raise", task=0, attempts=ALWAYS)):
            # the serial rung has no fault hooks, so the inline re-run
            # succeeds: injected worker bugs never poison the parent
            out = supervised_map(
                _square,
                list(range(3)),
                workers=2,
                config=SupervisorConfig(max_retries=0),
            )
        assert out == [0, 1, 4]

    def test_injected_fault_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(InjectedFault, ReproError)


class TestCorruptResults:
    def test_corrupt_result_detected_and_retried(self):
        health = RunHealth()
        cfg = SupervisorConfig(
            validate=lambda payload, result: result == payload * payload
        )
        with injected_faults(
            FaultSpec("corrupt", task=3, replacement=-1)
        ):
            out = supervised_map(
                _square, list(range(5)), workers=2,
                health=health, config=cfg,
            )
        assert out == [0, 1, 4, 9, 16]
        assert health.corrupt_results == 1
        assert health.retries == 1

    def test_corruption_without_validation_passes_through(self):
        # documents the trust boundary: no validate hook, no detection
        with injected_faults(
            FaultSpec("corrupt", task=0, replacement="junk",
                      attempts=ALWAYS)
        ):
            out = supervised_map(_square, [1, 2], workers=2)
        assert out == ["junk", 4]


class TestAPGREUnderFaults:
    """The acceptance criteria: faults never change APGRE's answer."""

    @pytest.fixture(scope="class")
    def graph(self):
        return from_networkx(nx.gnm_random_graph(40, 70, seed=11), n=40)

    @pytest.fixture(scope="class")
    def serial_scores(self, graph):
        return apgre_bc_detailed(graph, APGREConfig()).scores

    @pytest.fixture(scope="class")
    def clean_parallel(self, graph):
        return apgre_bc_detailed(
            graph, APGREConfig(parallel="processes", workers=2)
        )

    def test_clean_parallel_matches_serial(
        self, clean_parallel, serial_scores
    ):
        np.testing.assert_allclose(
            clean_parallel.scores, serial_scores, rtol=1e-9, atol=1e-9
        )
        assert clean_parallel.health is not None
        assert clean_parallel.health.ok

    def test_worker_crash_bit_identical(
        self, graph, clean_parallel, serial_scores
    ):
        with injected_faults(FaultSpec("kill", task=0)):
            res = apgre_bc_detailed(
                graph, APGREConfig(parallel="processes", workers=2)
            )
        assert np.array_equal(res.scores, clean_parallel.scores)
        np.testing.assert_allclose(
            res.scores, serial_scores, rtol=1e-9, atol=1e-9
        )
        assert res.health.worker_crashes == 1
        assert res.health.degraded

    def test_crash_exhausting_retries_bit_identical(
        self, graph, clean_parallel
    ):
        with injected_faults(FaultSpec("kill", task=1, attempts=ALWAYS)):
            res = apgre_bc_detailed(
                graph,
                APGREConfig(
                    parallel="processes", workers=2, max_retries=1
                ),
            )
        assert np.array_equal(res.scores, clean_parallel.scores)
        assert res.health.serial_retries == 1

    def test_timeout_bit_identical_and_reported(
        self, graph, clean_parallel
    ):
        with injected_faults(FaultSpec("delay", task=0, seconds=60)):
            res = apgre_bc_detailed(
                graph,
                APGREConfig(
                    parallel="processes", workers=2, timeout=0.5
                ),
            )
        assert np.array_equal(res.scores, clean_parallel.scores)
        assert res.health.timeouts == 1
        assert res.health.retries == 1

    def test_timeout_no_fallback_raises(self, graph):
        with injected_faults(
            FaultSpec("delay", task=0, seconds=60, attempts=ALWAYS)
        ):
            with pytest.raises(TaskTimeoutError):
                apgre_bc_detailed(
                    graph,
                    APGREConfig(
                        parallel="processes",
                        workers=2,
                        timeout=0.3,
                        max_retries=0,
                        fallback=False,
                    ),
                )

    def test_health_counters_match_injected_faults(self, graph):
        plan = [
            FaultSpec("kill", task=0),
            FaultSpec("delay", task=2, seconds=60),
        ]
        with injected_faults(*plan):
            res = apgre_bc_detailed(
                graph,
                APGREConfig(
                    parallel="processes", workers=2, timeout=0.5
                ),
            )
        health = res.health
        assert health.worker_crashes == 1
        assert health.timeouts == 1
        assert health.retries == 2
        assert health.faults == 2
        resolved = {o.task: o.status for o in health.outcomes}
        assert set(resolved.values()) <= {"ok-pool", "ok-serial"}

    def test_weighted_apgre_under_crash(self, graph):
        from repro.core.weighted_apgre import weighted_apgre_bc

        serial = weighted_apgre_bc(graph)
        health = RunHealth()
        with injected_faults(FaultSpec("kill", task=0)):
            parallel = weighted_apgre_bc(
                graph, workers=2, health=health
            )
        np.testing.assert_allclose(parallel, serial, rtol=1e-9, atol=1e-9)
        assert health.worker_crashes == 1

    def test_map_sources_under_crash_matches_serial(self, graph):
        from repro.baselines.common import run_per_source
        from repro.graph.traversal import bfs_sigma
        from repro.parallel.pool import map_sources_bc

        ref = run_per_source(graph, mode="succs")
        health = RunHealth()
        with injected_faults(FaultSpec("kill", task=2)):
            out = map_sources_bc(
                graph,
                list(range(graph.n)),
                mode="succs",
                forward=bfs_sigma,
                workers=2,
                health=health,
            )
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-10)
        assert health.worker_crashes == 1


class TestBenchRunnerDegradation:
    def test_timeout_degrades_to_missing_cell(self, monkeypatch):
        from repro.baselines import registry
        from repro.bench import runner

        def _stall(graph, **kwargs):
            import time

            time.sleep(60)  # pragma: no cover

        monkeypatch.setitem(registry.ALGORITHMS, "stall", _stall)
        runner.clear_cache()
        g = from_networkx(nx.path_graph(6), n=6)
        run = runner.time_algorithm(
            "stall", g, graph_name="tiny", timeout=0.3, verify=False
        )
        assert run is None  # the paper's '-' cell, not a hang

    def test_env_timeout_knob(self, monkeypatch):
        from repro.bench import runner

        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "not-a-number")
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError, match="REPRO_BENCH_TIMEOUT"):
            runner._env_timeout()
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "2.5")
        assert runner._env_timeout() == 2.5
        monkeypatch.delenv("REPRO_BENCH_TIMEOUT")
        assert runner._env_timeout() is None


class TestBatchedUnderFaults:
    """The batched kernel rides the same degradation ladder: a crashed
    batched worker is retried/degraded and scores stay identical to a
    clean batched run (and to serial APGRE)."""

    @pytest.fixture(scope="class")
    def graph(self):
        return from_networkx(nx.gnm_random_graph(45, 80, seed=13), n=45)

    @pytest.fixture(scope="class")
    def serial_scores(self, graph):
        return apgre_bc_detailed(graph, APGREConfig()).scores

    @pytest.fixture(scope="class")
    def clean_batched(self, graph):
        return apgre_bc_detailed(
            graph,
            APGREConfig(parallel="processes", workers=2, batch_size=4),
        )

    def test_clean_batched_matches_serial(
        self, clean_batched, serial_scores
    ):
        np.testing.assert_allclose(
            clean_batched.scores, serial_scores, rtol=1e-9, atol=1e-9
        )
        assert clean_batched.health is not None
        assert clean_batched.health.ok

    def test_batched_worker_crash_bit_identical(
        self, graph, clean_batched, serial_scores
    ):
        with injected_faults(FaultSpec("kill", task=0)):
            res = apgre_bc_detailed(
                graph,
                APGREConfig(
                    parallel="processes", workers=2, batch_size=4
                ),
            )
        assert np.array_equal(res.scores, clean_batched.scores)
        np.testing.assert_allclose(
            res.scores, serial_scores, rtol=1e-9, atol=1e-9
        )
        assert res.health.worker_crashes == 1
        assert res.health.degraded

    def test_batched_crash_exhausting_retries_degrades_serially(
        self, graph, clean_batched
    ):
        with injected_faults(FaultSpec("kill", task=1, attempts=ALWAYS)):
            res = apgre_bc_detailed(
                graph,
                APGREConfig(
                    parallel="processes",
                    workers=2,
                    batch_size=4,
                    max_retries=1,
                ),
            )
        assert np.array_equal(res.scores, clean_batched.scores)
        assert res.health.serial_retries == 1

    def test_batched_source_parallel_crash(self, graph):
        # the baselines' source-parallel pool rides the same ladder
        from repro.baselines.brandes import brandes_bc
        from repro.baselines.common import run_per_source

        expected = brandes_bc(graph)
        with injected_faults(FaultSpec("kill", task=0)):
            got = run_per_source(
                graph, mode="arcs", workers=2, batch_size=4
            )
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)


class TestParallelBatchedUnderFaults:
    """The shared-memory batched pool under injected crashes.

    The pool's crash story is stronger than retry-and-hope: score
    slots live in shared memory with a per-batch commit protocol, so a
    worker killed mid-batch leaves either no trace (batch still
    pending) or a poisoned slot the parent recomputes and excludes —
    never a half-added delta.  Scores must match serial batched to
    1e-9 and the examined-edge tally must stay exact through every
    rung of the ladder.
    """

    @pytest.fixture(scope="class")
    def graph(self):
        return from_networkx(nx.gnm_random_graph(40, 90, seed=21), n=40)

    @pytest.fixture(scope="class")
    def serial(self, graph):
        from repro.baselines.common import WorkCounter
        from repro.graph.batched import batched_bc_scores

        counter = WorkCounter()
        scores = batched_bc_scores(
            graph, list(range(graph.n)), batch=5, counter=counter
        )
        return scores, counter.edges

    def _pooled(self, graph, **kwargs):
        from repro.baselines.common import WorkCounter
        from repro.parallel.batched_pool import batched_pool_bc_scores

        counter = WorkCounter()
        health = RunHealth()
        scores = batched_pool_bc_scores(
            graph,
            list(range(graph.n)),
            batch=5,
            workers=2,
            counter=counter,
            health=health,
            **kwargs,
        )
        return scores, counter.edges, health

    def test_kill_mid_run_is_retried(self, graph, serial):
        ref_scores, ref_edges = serial
        with injected_faults(FaultSpec("kill", task=1)):
            scores, edges, health = self._pooled(graph)
        np.testing.assert_allclose(scores, ref_scores, rtol=1e-9, atol=1e-9)
        assert edges == ref_edges
        assert health.worker_crashes == 1
        assert health.retries >= 1
        assert health.degraded  # truthful: this run was not clean
        assert "degraded" in health.summary()

    def test_persistent_kill_resolves_on_serial_rung(self, graph, serial):
        ref_scores, ref_edges = serial
        with injected_faults(FaultSpec("kill", task=2, attempts=ALWAYS)):
            scores, edges, health = self._pooled(
                graph, config=SupervisorConfig(max_retries=2)
            )
        np.testing.assert_allclose(scores, ref_scores, rtol=1e-9, atol=1e-9)
        assert edges == ref_edges
        assert health.worker_crashes >= 2
        assert health.serial_retries >= 1
        assert health.degraded

    def test_no_fallback_raises(self, graph):
        with injected_faults(FaultSpec("kill", task=0, attempts=ALWAYS)):
            with pytest.raises(WorkerCrashError):
                self._pooled(
                    graph,
                    config=SupervisorConfig(max_retries=1, fallback=False),
                )

    def test_kill_mid_recompute_never_poisons_cache(self, graph):
        # A worker killed mid-recompute must never commit a poisoned
        # contribution: entries are admitted parent-side only after the
        # pool's poisoned-slot recovery, so the warm replay of a store
        # populated under a crash must be byte-exact (docs/CACHING.md).
        from repro.cache import ContributionStore
        from repro.core.apgre import apgre_bc_detailed
        from repro.core.config import APGREConfig

        store = ContributionStore()
        config = APGREConfig(
            parallel="processes", workers=2, batch_size=5, cache=store
        )
        with injected_faults(FaultSpec("kill", task=1)):
            cold = apgre_bc_detailed(graph, config)
        assert cold.health.worker_crashes >= 1
        assert store.counters.puts > 0
        warm = apgre_bc_detailed(graph, config)
        np.testing.assert_allclose(
            warm.scores, cold.scores, rtol=1e-9, atol=1e-9
        )
        assert warm.stats.edges_traversed == 0
        assert warm.stats.edges_replayed == cold.stats.edges_traversed

    def test_persistent_kill_cache_survives_serial_rung(self, graph):
        # Even when the pool is abandoned for the serial rung, the
        # entries admitted along the way replay exactly.
        from repro.cache import ContributionStore
        from repro.core.apgre import apgre_bc_detailed
        from repro.core.config import APGREConfig

        store = ContributionStore()
        config = APGREConfig(
            parallel="processes",
            workers=2,
            batch_size=5,
            max_retries=1,
            cache=store,
        )
        with injected_faults(FaultSpec("kill", task=2, attempts=ALWAYS)):
            cold = apgre_bc_detailed(graph, config)
        assert cold.health.degraded
        warm = apgre_bc_detailed(graph, config)
        np.testing.assert_allclose(
            warm.scores, cold.scores, rtol=1e-9, atol=1e-9
        )
        assert warm.stats.edges_traversed == 0

    def test_steal_disabled_still_recovers(self, graph, serial):
        ref_scores, ref_edges = serial
        with injected_faults(FaultSpec("kill", task=3)):
            scores, edges, health = self._pooled(graph, steal=False)
        np.testing.assert_allclose(scores, ref_scores, rtol=1e-9, atol=1e-9)
        assert edges == ref_edges
        assert health.steals == 0

    def test_apgre_parallel_batched_under_kill(self, graph):
        clean = apgre_bc_detailed(
            graph,
            APGREConfig(
                parallel="processes", workers=2, parallel_batched=True
            ),
        )
        assert clean.health.ok
        with injected_faults(FaultSpec("kill", task=0)):
            res = apgre_bc_detailed(
                graph,
                APGREConfig(
                    parallel="processes", workers=2, parallel_batched=True
                ),
            )
        np.testing.assert_allclose(
            res.scores, clean.scores, rtol=1e-9, atol=1e-9
        )
        assert res.health.worker_crashes == 1
        assert res.health.degraded

    def test_run_per_source_pool_route_under_kill(self, graph):
        from repro.baselines.brandes import brandes_bc
        from repro.baselines.common import run_per_source

        expected = brandes_bc(graph)
        health = RunHealth()
        with injected_faults(FaultSpec("kill", task=1)):
            got = run_per_source(
                graph,
                mode="arcs",
                workers=2,
                batch_size=6,
                health=health,
            )
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)
        assert health.worker_crashes == 1
