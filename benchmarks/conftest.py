"""Shared fixtures for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Workload size honours ``REPRO_SCALE`` / ``REPRO_GRAPHS`` (see
:mod:`repro.bench.workloads`). Every experiment's rendered table is
echoed to the terminal *and* written to ``benchmarks/results/<id>.txt``
so a run leaves a reviewable artifact mirroring the paper's tables and
figures.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, capsys):
    """Persist and display an ExperimentResult."""

    def _report(result) -> None:
        text = result.render()
        safe_id = result.exp_id.lower().replace(" ", "")
        (results_dir / f"{safe_id}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _report


def one_shot(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Exact BC runs are seconds-long and deterministic in shape;
    one round keeps the full suite's wall time sane.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
