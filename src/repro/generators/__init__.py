"""Synthetic graph generators.

Every benchmark workload in this reproduction is generated here:
classic random models (Erdős–Rényi, Barabási–Albert, R-MAT,
Watts–Strogatz), road-like lattices, structured fixtures (including the
paper's Figure-3 worked example) and — most importantly — the
*paper-analogue suite* (:mod:`repro.generators.suite`) that stands in
for the 12 SNAP/DIMACS graphs of Table 1 (see DESIGN.md §1 for the
substitution rationale).
"""

from repro.generators.random import gnm_random_graph, gnp_random_graph
from repro.generators.powerlaw import barabasi_albert_graph, powerlaw_cluster_graph
from repro.generators.rmat import rmat_graph
from repro.generators.smallworld import watts_strogatz_graph
from repro.generators.road import grid_road_graph, districted_road_graph
from repro.generators.structured import (
    barbell_graph,
    disease_network_analogue,
    block_tree_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    paper_example_graph,
    path_graph,
    pendant_augment,
    star_graph,
)
from repro.generators.suite import (
    GraphSpec,
    SUITE_SPECS,
    analogue_graph,
    paper_suite,
    suite_names,
)

__all__ = [
    "gnm_random_graph",
    "gnp_random_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "rmat_graph",
    "watts_strogatz_graph",
    "grid_road_graph",
    "districted_road_graph",
    "barbell_graph",
    "block_tree_graph",
    "caterpillar_graph",
    "complete_graph",
    "cycle_graph",
    "disease_network_analogue",
    "paper_example_graph",
    "path_graph",
    "pendant_augment",
    "star_graph",
    "GraphSpec",
    "SUITE_SPECS",
    "analogue_graph",
    "paper_suite",
    "suite_names",
]
