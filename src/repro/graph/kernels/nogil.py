"""Optional numba ``@njit(nogil=True)`` per-source Brandes kernel.

A compiled CSR Brandes loop: no ``(B, n)`` matrices, no per-level
numpy dispatch — each source runs start to finish in machine code with
the GIL released, so the threads backend can overlap whole batches of
it.  numba is strictly optional: the probe is a lazy import that
degrades to a clean miss (the cache's disk-layer policy), the module
imports fine without it, and ``kernel="auto"`` never selects it when
absent.

Exactness: σ sums are integral (exact in float64), the dependency
recursion replays exactly the recorded shortest-path-DAG arcs in
reverse discovery order (the classic Brandes stack), and the examined
-arc tally is identical to the serial ``"arcs"`` path — forward
probes are each popped vertex's out-degree, backward probes are the
DAG arc replays.  Scores differ from the batched kernels only in
float association (≤1e-9).

``NUMBA_PARALLEL`` feeds ``@njit(parallel=...)``; it defaults to
``False`` because the exact per-arc accumulation order (and thus
bit-level reproducibility of a serial rerun) is part of this repo's
testing contract — the threads backend supplies the multicore axis
instead, batches fanned out over ``nogil`` calls.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.types import SCORE_DTYPE

__all__ = [
    "NUMBA_PARALLEL",
    "numba_available",
    "numba_unavailable_reason",
    "prepare_numba",
    "numba_contributions",
]

NUMBA_PARALLEL = False

# lazy probe state: fn is the compiled kernel once built, err the
# reason it cannot be (import failure or jit failure)
_STATE = {"fn": None, "err": None}


def _build():
    """Import numba and compile the kernel (raises on any failure)."""
    from numba import njit

    @njit(nogil=True, parallel=NUMBA_PARALLEL, cache=False)
    def _brandes_batch(indptr, indices, srcs, n):
        bc = np.zeros(n, dtype=np.float64)
        dist = np.empty(n, dtype=np.int32)
        sigma = np.empty(n, dtype=np.float64)
        delta = np.empty(n, dtype=np.float64)
        order = np.empty(n, dtype=np.int64)
        m = indices.size
        arc_src = np.empty(m, dtype=np.int64)
        arc_dst = np.empty(m, dtype=np.int64)
        edges = np.int64(0)
        for si in range(srcs.size):
            s = srcs[si]
            for v in range(n):
                dist[v] = -1
                sigma[v] = 0.0
                delta[v] = 0.0
            dist[s] = 0
            sigma[s] = 1.0
            order[0] = s
            head = 0
            tail = 1
            n_arcs = 0
            while head < tail:
                u = order[head]
                head += 1
                du = dist[u]
                edges += indptr[u + 1] - indptr[u]
                for p in range(indptr[u], indptr[u + 1]):
                    w = indices[p]
                    if dist[w] < 0:
                        dist[w] = du + 1
                        order[tail] = w
                        tail += 1
                    if dist[w] == du + 1:
                        sigma[w] += sigma[u]
                        arc_src[n_arcs] = u
                        arc_dst[n_arcs] = w
                        n_arcs += 1
            # DAG arcs were recorded in discovery (level-ascending)
            # order; replaying them reversed is the Brandes stack
            edges += n_arcs
            for a in range(n_arcs - 1, -1, -1):
                u = arc_src[a]
                w = arc_dst[a]
                delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w])
            for v in range(n):
                if v != s:
                    bc[v] += delta[v]
        return bc, edges

    # force compilation now so availability is a truthful promise
    one = np.zeros(2, dtype=np.int64)
    _brandes_batch(
        np.array([0, 1, 2], dtype=np.int64),
        np.array([1, 0], dtype=np.int64),
        one[:1],
        2,
    )
    return _brandes_batch


def numba_available() -> bool:
    """Lazy capability probe: import + jit exactly once, cache both."""
    if _STATE["fn"] is not None:
        return True
    if _STATE["err"] is not None:
        return False
    try:
        _STATE["fn"] = _build()
    except Exception as exc:  # clean miss: ImportError or jit failure
        _STATE["err"] = f"{type(exc).__name__}: {exc}"
        return False
    return True


def numba_unavailable_reason() -> Optional[str]:
    """Why the probe failed (``None`` when available / not yet probed)."""
    return _STATE["err"]


def prepare_numba(graph: CSRGraph, batch: int):
    """Per-run context: the compiled kernel + int64 CSR views."""
    if not numba_available():
        raise AlgorithmError(
            f"the numba kernel is unavailable ({_STATE['err']}); "
            f"use kernel='auto'"
        )
    return (
        _STATE["fn"],
        graph.out_indptr.astype(np.int64, copy=False),
        graph.out_indices.astype(np.int64, copy=False),
    )


def numba_contributions(
    graph: CSRGraph,
    sources,
    *,
    counter=None,
    workspace=None,
    context=None,
) -> np.ndarray:
    """Summed BC contributions of one batch via the compiled kernel.

    ``workspace`` is accepted for signature uniformity (the compiled
    loop owns its scratch); ``context`` reuses :func:`prepare_numba`
    output across chunks.
    """
    if context is None:
        context = prepare_numba(graph, 0)
    fn, indptr, indices = context
    srcs = np.asarray(sources, dtype=np.int64).ravel()
    if srcs.size == 0:
        raise AlgorithmError("batched BFS needs at least one source")
    bc, edges = fn(indptr, indices, srcs, graph.n)
    if counter is not None:
        counter.add(int(edges))
    return bc.astype(SCORE_DTYPE, copy=False)
