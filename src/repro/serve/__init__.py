"""Warm-path BC serving: a long-lived daemon over the APGRE stack.

The cold path pays process startup, graph parsing and BCC
decomposition on every query; this package keeps all of it resident
(docs/SERVING.md):

* :mod:`repro.serve.snapshots` — versioned immutable graph snapshots
  with reader pinning, advanced by streamed edge deltas;
* :mod:`repro.serve.score_lru` — an LRU of assembled score vectors
  keyed by (graph version, config fingerprint);
* :mod:`repro.serve.protocol` — query-parameter parsing, per-request
  :class:`~repro.core.config.APGREConfig` construction and the config
  fingerprint;
* :mod:`repro.serve.server` — the stdlib HTTP daemon (TCP or unix
  socket) behind ``repro-bc serve``;
* :mod:`repro.serve.client` — the stdlib client behind
  ``repro-bc query``, the tests and ``benchmarks/bench_serving.py``.

Heavy imports stay lazy (PEP 562): importing :mod:`repro.serve` must
not drag numpy-adjacent machinery into processes that only want the
client.
"""

from __future__ import annotations

__all__ = [
    "BCRequestHandler",
    "RequestParams",
    "ScoreLRU",
    "ServeClient",
    "ServerState",
    "Snapshot",
    "SnapshotManager",
    "build_config",
    "config_fingerprint",
    "make_server",
    "parse_delta_body",
]

_LAZY = {
    "BCRequestHandler": "repro.serve.server",
    "RequestParams": "repro.serve.protocol",
    "ScoreLRU": "repro.serve.score_lru",
    "ServeClient": "repro.serve.client",
    "ServerState": "repro.serve.server",
    "Snapshot": "repro.serve.snapshots",
    "SnapshotManager": "repro.serve.snapshots",
    "build_config": "repro.serve.protocol",
    "config_fingerprint": "repro.serve.protocol",
    "make_server": "repro.serve.server",
    "parse_delta_body": "repro.serve.protocol",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module), name)
