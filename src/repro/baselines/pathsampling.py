"""Shortest-path-sampling approximate BC (Riondato–Kornaropoulos).

A second approximation family beyond pivot sampling: instead of
computing *all* dependencies from a few sources, sample random
``(s, t)`` pairs, pick one shortest path between them uniformly at
random, and credit its interior vertices. Riondato & Kornaropoulos
(WSDM'14) bound the sample size via the VC dimension of the range set:

    r = (c / ε²) · ( ⌊log₂(VD(G) − 2)⌋ + 1 + ln(1/δ) )

where ``VD(G)`` is the vertex diameter (the number of vertices on the
longest shortest path); every *normalised* score is then within ε of
exact with probability ≥ 1 − δ. Each sample costs one truncated BFS —
independent of how many vertices you want estimates for, which is the
family's advantage over per-source sampling on huge graphs.

Returned scores use this package's raw convention (normalised estimate
× n(n−1)), so they compare directly against the exact algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import bfs_sigma
from repro.types import SCORE_DTYPE, Seed, as_rng

__all__ = ["PathSamplingResult", "path_sampling_bc", "vertex_diameter_bound"]


@dataclass
class PathSamplingResult:
    """Estimate plus the sampling parameters actually used."""

    scores: np.ndarray  # raw-convention estimates
    samples: int
    epsilon: float
    delta: float
    vd_bound: int


def vertex_diameter_bound(graph: CSRGraph, *, probes: int = 4,
                          seed: Seed = None) -> int:
    """Cheap upper-ish bound on the vertex diameter.

    Runs BFS from a few random probes and doubles the largest
    eccentricity seen (a standard 2-approximation argument for
    undirected graphs; for directed graphs it is a heuristic, which
    only affects the sample-size constant, not correctness of the
    estimates). Always at least 2.
    """
    rng = as_rng(seed)
    n = graph.n
    if n == 0:
        return 2
    best = 1
    for _ in range(max(probes, 1)):
        s = int(rng.integers(0, n))
        res = bfs_sigma(graph, s)
        best = max(best, res.depth)
    return max(2 * best + 1, 2)


def path_sampling_bc(
    graph: CSRGraph,
    *,
    epsilon: float = 0.05,
    delta: float = 0.1,
    c: float = 0.5,
    max_samples: Optional[int] = None,
    seed: Seed = None,
) -> PathSamplingResult:
    """Approximate BC by uniform shortest-path sampling (RK'14).

    Parameters
    ----------
    graph:
        Any graph.
    epsilon, delta:
        Accuracy/confidence of the normalised estimates.
    c:
        The universal constant of the VC sample bound (0.5 is the
        standard choice).
    max_samples:
        Optional hard cap on the sample count (useful in tests).
    seed:
        RNG seed.

    Notes
    -----
    Sampling a path: draw ``s``, BFS, draw ``t`` among reachable
    vertices (≠ s), then walk backwards from ``t`` choosing each
    predecessor ``v`` with probability ``σ_sv / Σ σ``, which makes
    every shortest path equally likely.
    """
    if not 0 < epsilon < 1:
        raise AlgorithmError(f"epsilon must be in (0,1), got {epsilon}")
    if not 0 < delta < 1:
        raise AlgorithmError(f"delta must be in (0,1), got {delta}")
    rng = as_rng(seed)
    n = graph.n
    scores = np.zeros(n, dtype=SCORE_DTYPE)
    if n < 3:
        return PathSamplingResult(scores, 0, epsilon, delta, 2)
    vd = vertex_diameter_bound(graph, seed=rng)
    r = int(
        np.ceil(
            (c / epsilon**2)
            * (np.floor(np.log2(max(vd - 2, 1))) + 1 + np.log(1 / delta))
        )
    )
    if max_samples is not None:
        r = min(r, int(max_samples))
    r = max(r, 1)

    in_ip, in_ix = graph.in_indptr, graph.in_indices
    for _ in range(r):
        # (s, t) uniform over ordered pairs — unreachable pairs count
        # toward r but credit nothing, exactly as they contribute 0 to
        # the exact score
        s = int(rng.integers(0, n))
        t = int(rng.integers(0, n - 1))
        if t >= s:
            t += 1
        res = bfs_sigma(graph, s)
        if res.dist[t] <= 0:
            continue
        # walk back from t, weighting predecessors by their sigma
        v = t
        while True:
            preds = in_ix[in_ip[v] : in_ip[v + 1]]
            mask = res.dist[preds] == res.dist[v] - 1
            preds = preds[mask]
            weights = res.sigma[preds]
            total = weights.sum()
            pick = int(preds[rng.choice(preds.size, p=weights / total)])
            if pick == s:
                break
            scores[pick] += 1.0
            v = pick
    # normalised estimate = hits / r; raw convention multiplies back
    scores *= n * (n - 1) / r
    return PathSamplingResult(scores, r, epsilon, delta, vd)
