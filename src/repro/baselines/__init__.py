"""Baseline BC algorithms (the paper's §5.1 comparators).

Every algorithm in this package computes the same quantity — exact,
unnormalised betweenness centrality over ordered vertex pairs — and is
cross-checked against the others by the test suite. They differ in
*how* the per-source work is organised, mirroring the parallelisation
strategies the paper benchmarks against:

===============  ====================================================
``serial``        Brandes' algorithm, one source at a time
                  (:func:`repro.baselines.brandes.brandes_bc`), plus a
                  pure-Python exact-arithmetic oracle for tests.
``preds``         Level-synchronous, predecessor lists (Bader–Madduri).
``succs``         Level-synchronous, successor scans, no predecessor
                  storage (Madduri et al.).
``lockSyncFree``  Edge-parallel, conflict-free accumulation (Tan et
                  al.).
``async``         Asynchronous worklist dependency propagation
                  (Prountzos–Pingali / Galois); undirected only, as in
                  the paper.
``hybrid``        Direction-optimising BFS (Shun–Blelloch / Ligra +
                  Beamer).
``sampling``      Source-sampled approximation (Bader et al.,
                  Brandes–Pich) — the paper's §5.2 GPU-sampling
                  comparison row.
===============  ====================================================
"""

from repro.baselines.brandes import brandes_bc, brandes_python_bc
from repro.baselines.preds import preds_bc
from repro.baselines.succs import succs_bc
from repro.baselines.lockfree import lockfree_bc
from repro.baselines.async_bc import async_bc
from repro.baselines.hybrid import hybrid_bc
from repro.baselines.sampling import sampling_bc
from repro.baselines.adaptive import AdaptiveEstimate, adaptive_bc
from repro.baselines.pathsampling import (
    PathSamplingResult,
    path_sampling_bc,
    vertex_diameter_bound,
)
from repro.baselines.algebraic import algebraic_bc
from repro.baselines.edge_bc import edge_betweenness_bc, undirected_edge_scores
from repro.baselines.weighted import dijkstra_sigma, weighted_brandes_bc
from repro.baselines.registry import ALGORITHMS, get_algorithm, algorithm_names

__all__ = [
    "brandes_bc",
    "brandes_python_bc",
    "preds_bc",
    "succs_bc",
    "lockfree_bc",
    "async_bc",
    "hybrid_bc",
    "sampling_bc",
    "PathSamplingResult",
    "path_sampling_bc",
    "vertex_diameter_bound",
    "AdaptiveEstimate",
    "algebraic_bc",
    "adaptive_bc",
    "edge_betweenness_bc",
    "undirected_edge_scores",
    "dijkstra_sigma",
    "weighted_brandes_bc",
    "ALGORITHMS",
    "get_algorithm",
    "algorithm_names",
]
