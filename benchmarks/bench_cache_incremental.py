"""Contribution-cache bench: cold vs warm vs k-edge incremental delta.

Three measurements per workload, all through the BCC-scoped
contribution cache (:mod:`repro.cache`, docs/CACHING.md):

``cold``
    APGRE with an empty :class:`~repro.cache.ContributionStore` — every
    sub-graph contribution is computed and admitted.
``warm``
    The identical run against the now-populated store. Every sub-graph
    fingerprint hits, so the run replays stored score vectors and
    traverses **zero** edges; the exact-tally guard asserts
    ``edges_replayed == cold.edges_traversed``.
``delta``
    ``apgre_bc_delta`` after adding ``K_DELTA`` (<= 8) new edges inside
    one non-top sub-graph. Only that sub-graph's fingerprint changes,
    so the incremental front-end recomputes one dirty BCC and replays
    the rest — asserted through the edge-tally identity
    ``delta.traversed + delta.replayed == from_scratch.traversed`` and
    scores matching a from-scratch run on the new graph to 1e-9.

The committed ``BENCH_cache.json`` records all three on the two
workloads below; ``check_rows`` holds future runs to warm >= 5x cold
(the PR's acceptance bar — replay skips the whole BC phase, so the
measured ratios are far above it) and to no worse than half the
committed baseline ratios.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.persistence import environment_provenance
from repro.bench.workloads import get_graph
from repro.cache import ContributionStore, apgre_bc_delta
from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.decompose.partition import graph_partition

pytestmark = pytest.mark.benchmarks

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_cache.json"
RESULTS_DIR = Path(__file__).resolve().parent / "results"
SCHEMA_VERSION = 1  # of this payload; bumped when row keys change

#: (suite graph, scale) — one bridge-heavy road graph where BC work
#: dwarfs preprocessing, one social graph with many merged blocks.
WORKLOADS = [
    ("USA-roadBAY", 2.0),
    ("Email-Enron", 2.0),
]
QUICK_WORKLOADS = [
    ("USA-roadBAY", 1.0),
]
SEED = 7
K_DELTA = 6  # acceptance bar says k <= 8
WARM_REPEAT = 2  # warm replay is idempotent: best-of absorbs noise


def _localized_added_edges(graph, k, seed=SEED):
    """``k`` new edges between vertices of one non-top sub-graph.

    Adding edges inside a single sub-graph leaves every other
    sub-graph's local structure and cross-articulation summaries
    byte-identical, so the delta dirties exactly one cache key — the
    scenario the incremental engine exists for. Returns the edges and
    the host sub-graph's vertex count (reported in the row).
    """
    partition = graph_partition(graph)
    host = max(partition.subgraphs[1:], key=lambda s: s.num_vertices)
    verts = np.asarray(host.vertices)
    u = np.repeat(np.arange(graph.n), np.diff(graph.out_indptr))
    existing = set(zip(u.tolist(), graph.out_indices.tolist()))
    rng = np.random.default_rng(seed)
    chosen = []
    seen = set()
    while len(chosen) < k:
        a, b = (int(x) for x in rng.choice(verts, 2, replace=False))
        key = (min(a, b), max(a, b))
        if a == b or (a, b) in existing or key in seen:
            continue
        seen.add(key)
        chosen.append((a, b))
    return np.asarray(chosen, dtype=np.int64), host.num_vertices


def measure_workload(name, scale):
    """Cold/warm/delta measurement row for one suite graph."""
    graph = get_graph(name, scale=scale)
    store = ContributionStore()
    config = APGREConfig(parallel="serial", cache=store)

    t0 = time.perf_counter()
    cold = apgre_bc_detailed(graph, config)
    t_cold = time.perf_counter() - t0

    t_warm = None
    for _ in range(WARM_REPEAT):
        t0 = time.perf_counter()
        warm = apgre_bc_detailed(graph, config)
        elapsed = time.perf_counter() - t0
        t_warm = elapsed if t_warm is None else min(t_warm, elapsed)
    np.testing.assert_allclose(warm.scores, cold.scores, rtol=1e-9, atol=1e-9)
    assert warm.stats.edges_traversed == 0, (
        f"{name}: warm rerun traversed {warm.stats.edges_traversed} edges"
    )
    assert warm.stats.edges_replayed == cold.stats.edges_traversed, (
        f"{name}: warm replay tally {warm.stats.edges_replayed} != cold "
        f"traversal {cold.stats.edges_traversed}"
    )

    added, host_n = _localized_added_edges(graph, K_DELTA)
    t0 = time.perf_counter()
    delta = apgre_bc_delta(graph, edges_added=added, cache=store, config=config)
    t_delta = time.perf_counter() - t0
    scratch = apgre_bc_detailed(
        delta.graph, APGREConfig(parallel="serial", cache=ContributionStore())
    )
    np.testing.assert_allclose(
        delta.scores, scratch.scores, rtol=1e-9, atol=1e-9
    )
    ds = delta.result.stats
    assert (
        ds.edges_traversed + ds.edges_replayed
        == scratch.stats.edges_traversed
    ), (
        f"{name}: delta tallies {ds.edges_traversed}+{ds.edges_replayed} "
        f"!= from-scratch {scratch.stats.edges_traversed}"
    )
    assert ds.subgraphs_recomputed < ds.num_subgraphs, (
        f"{name}: delta recomputed every sub-graph — nothing was replayed"
    )

    return {
        "graph": name,
        "scale": scale,
        "n": graph.n,
        "m": graph.num_arcs,
        "subgraphs": cold.stats.num_subgraphs,
        "cold_seconds": round(t_cold, 4),
        "warm_seconds": round(t_warm, 4),
        "warm_speedup": round(t_cold / t_warm, 2),
        "edges_traversed_cold": cold.stats.edges_traversed,
        "edges_replayed_warm": warm.stats.edges_replayed,
        "delta_edges_added": int(len(added)),
        "delta_host_subgraph_vertices": host_n,
        "delta_seconds": round(t_delta, 4),
        "delta_speedup_vs_scratch": round(t_cold / t_delta, 2),
        "delta_subgraphs_recomputed": ds.subgraphs_recomputed,
        "delta_subgraphs_replayed": ds.subgraphs_replayed,
        "delta_edges_traversed": ds.edges_traversed,
        "delta_edges_replayed": ds.edges_replayed,
        "cache": store.summary_dict(),
    }


def run_bench(quick=False, out_path=None):
    """Measure every workload; returns (payload, path written)."""
    workloads = QUICK_WORKLOADS if quick else WORKLOADS
    rows = [measure_workload(*w) for w in workloads]
    payload = {
        "bench": "bench_cache_incremental",
        "schema_version": SCHEMA_VERSION,
        "seed": SEED,
        "k_delta": K_DELTA,
        "quick": quick,
        "environment": environment_provenance(),
        "workloads": rows,
    }
    if out_path is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out_path = RESULTS_DIR / "bench_cache_incremental.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload, Path(out_path)


def check_rows(rows, *, quick=False):
    """Perf guards (the correctness guards run inside measure)."""
    for row in rows:
        assert row["warm_speedup"] >= 5.0, (
            f"{row['graph']}: warm rerun only {row['warm_speedup']}x "
            f"faster than cold (acceptance bar is 5x)"
        )
        assert row["delta_subgraphs_recomputed"] < row["subgraphs"], (
            f"{row['graph']}: localized delta dirtied every sub-graph"
        )
    if quick or not BASELINE_PATH.exists():
        return
    baseline = json.loads(BASELINE_PATH.read_text())
    base_rows = {r["graph"]: r for r in baseline["workloads"]}
    for row in rows:
        base = base_rows.get(row["graph"])
        if base is None:
            continue
        assert row["warm_speedup"] >= 0.5 * base["warm_speedup"], (
            f"{row['graph']}: warm speedup {row['warm_speedup']}x fell to "
            f"less than half the committed {base['warm_speedup']}x"
        )


def test_cache_incremental_smoke(results_dir):
    payload, _ = run_bench(quick=False)
    print(json.dumps(payload, indent=2))
    check_rows(payload["workloads"], quick=False)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small graph — the CI smoke configuration",
    )
    parser.add_argument(
        "--out", default=None, help="output JSON path (default: results/)"
    )
    args = parser.parse_args(argv)
    payload, out_path = run_bench(quick=args.quick, out_path=args.out)
    print(json.dumps(payload, indent=2))
    check_rows(payload["workloads"], quick=args.quick)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
