"""k-core decomposition (iterated degree peeling).

The degree-1 peel behind :mod:`repro.core.treefold` is the ``k = 2``
case of the general k-core decomposition (Matula–Beck): repeatedly
remove vertices of degree < k. ``core_numbers`` computes every
vertex's coreness in O(|V| + |E|) with the bucket-queue algorithm —
a useful structural fingerprint for the workload suite (power-law
analogues have deep cores, road lattices are all 2–3-core).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.graph.ops import to_undirected
from repro.types import VERTEX_DTYPE

__all__ = ["core_numbers", "k_core"]


def core_numbers(graph: CSRGraph) -> np.ndarray:
    """Coreness of every vertex (undirected shadow for directed input).

    ``core[v]`` is the largest k such that v belongs to a subgraph
    with minimum degree k. Isolated vertices have coreness 0.
    """
    und = to_undirected(graph)
    n = und.n
    deg = und.out_degrees().astype(np.int64).copy()
    core = np.zeros(n, dtype=np.int64)
    # bucket-sorted vertices by current degree (Matula–Beck / Batagelj–
    # Zaveršnik): process in nondecreasing degree order, decrementing
    # neighbours' degrees as we go
    order = np.argsort(deg, kind="stable")
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(n)
    # bin_start[d] = first position in `order` with degree >= d
    max_deg = int(deg.max()) if n else 0
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    counts = np.bincount(deg, minlength=max_deg + 1)
    np.cumsum(counts, out=bin_start[1:])
    bin_start = bin_start[:-1].copy()

    order = order.copy()
    for i in range(n):
        v = int(order[i])
        core[v] = deg[v]
        for w in und.out_neighbors(v).tolist():
            if deg[w] > deg[v]:
                # swap w to the front of its degree bin, shrink bin
                dw = int(deg[w])
                front = int(bin_start[dw])
                u = int(order[front])
                if u != w:
                    order[front], order[pos[w]] = w, u
                    pos[u], pos[w] = pos[w], front
                bin_start[dw] += 1
                deg[w] -= 1
    return core


def k_core(graph: CSRGraph, k: int) -> np.ndarray:
    """Vertices of the k-core (coreness >= k).

    Raises
    ------
    GraphValidationError
        For negative k.
    """
    if k < 0:
        raise GraphValidationError(f"k must be >= 0, got {k}")
    return np.flatnonzero(core_numbers(graph) >= k).astype(VERTEX_DTYPE)
