"""Scale sweep — APGRE's margin grows with problem size.

EXPERIMENTS.md attributes the gap between our measured Table-2 speedup
(~1.9×) and the paper's algorithmic 4.6× to fixed per-level overhead at
analogue scale. This benchmark tests that explanation directly: the
APGRE-vs-serial ratio on a pendant-heavy graph must not shrink as the
analogue grows.
"""

import time

import numpy as np
import pytest

from repro.baselines import brandes_bc
from repro.bench.runner import ExperimentResult
from repro.core.apgre import apgre_bc
from repro.generators.suite import analogue_graph

from conftest import one_shot

_NAME = "Email-Enron"
_SCALES = [0.5, 1.0, 1.5]


@pytest.mark.parametrize("scale", _SCALES)
def test_apgre_at_scale(benchmark, scale):
    graph = analogue_graph(_NAME, scale=scale)
    scores = one_shot(benchmark, apgre_bc, graph)
    assert scores.shape == (graph.n,)
    benchmark.group = "scale-sweep"
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["vertices"] = graph.n


def test_report_scale_sweep(benchmark, report):
    def _run():
        rows = []
        speedups = []
        for scale in _SCALES:
            graph = analogue_graph(_NAME, scale=scale)
            t0 = time.perf_counter()
            a = apgre_bc(graph)
            t_apgre = time.perf_counter() - t0
            t0 = time.perf_counter()
            b = brandes_bc(graph)
            t_serial = time.perf_counter() - t0
            assert np.allclose(a, b, rtol=1e-7, atol=1e-6)
            speedup = t_serial / t_apgre
            speedups.append(speedup)
            rows.append([scale, graph.n, graph.num_arcs, t_serial, t_apgre, speedup])
        # the margin must not collapse as the graph grows (generous
        # slack: timing noise on a 1-core box)
        assert speedups[-1] > speedups[0] * 0.75
        return ExperimentResult(
            exp_id="Scale sweep",
            title=f"APGRE speedup vs analogue scale ({_NAME})",
            headers=["scale", "#V", "#arcs", "serial s", "APGRE s", "speedup"],
            rows=rows,
        )

    result = one_shot(benchmark, _run)
    report(result)
