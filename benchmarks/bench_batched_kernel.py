"""Batched-kernel smoke bench: serial vs batched, per compute kernel.

A small deterministic perf artifact for the batched multi-source BC
kernel (:mod:`repro.graph.batched`) and the compute-kernel registry
(:mod:`repro.graph.kernels`): each workload fixes a graph and a sorted
source sample, measures serial per-source (``mode="arcs"``) once, then
times ``batch_size="auto"`` under every kernel on the workload's axis —
wall-clock seconds, examined-edge MTEPS (each kernel's *own* examined
tally: ``edges + pulled``) and the speedup over serial.  Results land
in ``benchmarks/results/bench_batched_kernel.json`` each run; the
recorded numbers are committed as ``benchmarks/BENCH_baseline.json`` so
later PRs have a per-kernel perf trajectory to compare against.

Workloads cover three frontier regimes: a deep road grid and a shallow
sparse social analogue (where the top-down kernels are the right
answer), plus ``social-core`` — a dense small-diameter powerlaw core
(Barabási–Albert, avg degree 32, two-sweep diameter ~3), the regime the
real com-youtube/Slashdot *cores* occupy.  The suite analogues are
deliberately sparse (satellite chains dominate), so none of them
exercises the direction-optimizing ``pull`` kernel; ``social-core`` is
where its bottom-up levels pay off and where ``auto`` selects it.

Wall-clock is measured on uncounted runs (instrumented runs pay for
the tally); each kernel's MTEPS denominator comes from one counted run
of that kernel, because the pull kernel genuinely examines fewer arcs
(see docs/KERNELS.md for the tally contract).

Honest numbers note: the historical serial-vs-batched rows keep their
achieved ~1.5-1.9x single-core level (per-source numpy BFS is
dispatch-bound).  The pull-vs-arcs gate on ``social-core`` asserts
>= 1.3x against a measured ~3.5x on a single core — the win is an
algorithmic examined-arc reduction (bottom-up levels probe the small
unvisited in-mass instead of pushing the saturated frontier), not a
parallelism artifact, so it is not core-count gated; the floor sits
well under the measurement to absorb scheduler noise.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.common import WorkCounter, run_per_source
from repro.bench.workloads import get_graph
from repro.generators.powerlaw import barabasi_albert_graph
from repro.graph.kernels import get_kernel
from repro.metrics.teps import examined_mteps

pytestmark = pytest.mark.benchmarks

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_baseline.json"

#: (graph, scale, sources, kernel axis) — the two >= 50k-vertex suite
#: regimes (deep grid, shallow social analogue) plus the dense
#: small-diameter core where the pull kernel's bottom-up levels win.
WORKLOADS = [
    ("USA-roadBAY", 10.5, 128, ("arcs", "spmm")),
    ("WikiTalk", 49.0, 128, ("arcs", "spmm")),
    ("social-core", 10.0, 64, ("arcs", "spmm", "pull")),
]
#: shrunken workloads for ``--quick`` (the CI smoke job): same three
#: regimes, sizes that keep the job under a minute
QUICK_WORKLOADS = [
    ("USA-roadBAY", 2.0, 32, ("arcs", "spmm")),
    ("WikiTalk", 8.0, 32, ("arcs", "spmm")),
    ("social-core", 2.0, 32, ("arcs", "pull")),
]
SEED = 42
REPEAT = 2  # best-of: absorbs one-off scheduler noise

#: pull must beat arcs by this factor on the dense core (measured
#: ~3.5x full-size / ~2x quick-size on one core; see module docstring)
PULL_VS_ARCS_FLOOR = 1.3
PULL_VS_ARCS_FLOOR_QUICK = 1.15


def workload_graph(name, scale):
    """A workload graph: suite analogue, or the synthetic dense core."""
    if name == "social-core":
        return barabasi_albert_graph(int(3000 * scale), 16, seed=7)
    return get_graph(name, scale=scale)


def _best_of(fn, repeat=REPEAT):
    best = None
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def measure_workload(name, scale, n_sources, kernels=("arcs",)):
    """One graph's serial-vs-batched rows, one row per compute kernel."""
    graph = workload_graph(name, scale)
    rng = np.random.default_rng(SEED)
    sources = np.sort(
        rng.choice(graph.n, size=min(n_sources, graph.n), replace=False)
    ).tolist()
    serial_counter = WorkCounter()
    run_per_source(
        graph, sources=sources, mode="arcs", counter=serial_counter
    )
    serial, t_serial = _best_of(
        lambda: run_per_source(graph, sources=sources, mode="arcs")
    )
    rows = []
    arcs_seconds = None
    for kern in kernels:
        if not get_kernel(kern).available():
            continue  # e.g. numba on hosts without it: clean miss
        counter = WorkCounter()
        run_per_source(
            graph, sources=sources, mode="arcs",
            batch_size="auto", kernel=kern, counter=counter,
        )
        batched, t_batched = _best_of(
            lambda: run_per_source(
                graph, sources=sources, mode="arcs",
                batch_size="auto", kernel=kern,
            )
        )
        np.testing.assert_allclose(batched, serial, rtol=1e-9, atol=1e-9)
        if kern == "arcs":
            arcs_seconds = t_batched
        row = {
            "graph": name,
            "scale": scale,
            "n": graph.n,
            "m": graph.num_arcs,
            "sources": len(sources),
            "kernel": kern,
            "edges_examined": counter.examined,
            "edges_pulled": counter.pulled,
            "serial_seconds": round(t_serial, 4),
            "batched_seconds": round(t_batched, 4),
            "serial_mteps": round(
                examined_mteps(serial_counter.examined, t_serial), 2
            ),
            "batched_mteps": round(
                examined_mteps(counter.examined, t_batched), 2
            ),
            "speedup": round(t_serial / t_batched, 3),
        }
        if arcs_seconds is not None:
            row["speedup_vs_arcs"] = round(arcs_seconds / t_batched, 3)
        rows.append(row)
    return rows


def check_rows(rows, *, quick=False):
    """The bench's regression guards, shared by pytest and the CLI.

    The vs-serial floor applies to each workload's *best* kernel row —
    the claim is "batched with the right kernel beats serial", and some
    rows exist only as comparison baselines (on the dense core the arcs
    kernel's sort-based dedup over ~m-sized candidate arrays is
    serial-or-worse; that is exactly why pull exists there).
    """
    # small graphs are dispatch-bound, so quick runs only check >= 1.0x
    floor = 1.0 if quick else 1.2
    pull_floor = PULL_VS_ARCS_FLOOR_QUICK if quick else PULL_VS_ARCS_FLOOR
    best = {}
    for row in rows:
        prev = best.get(row["graph"])
        if prev is None or row["speedup"] > prev["speedup"]:
            best[row["graph"]] = row
    for graph, row in best.items():
        assert row["speedup"] >= floor, (
            f"batched kernel regressed on {graph}: best kernel "
            f"{row['kernel']} at {row['speedup']}x vs serial "
            f"(floor {floor}x)"
        )
    for row in rows:
        if row["graph"] == "social-core" and row["kernel"] == "pull":
            assert row["speedup_vs_arcs"] >= pull_floor, (
                f"pull kernel lost its edge on the dense core: "
                f"{row['speedup_vs_arcs']}x vs arcs "
                f"(floor {pull_floor}x, measured ~3.5x)"
            )
            assert row["edges_pulled"] > 0, (
                "pull kernel never went bottom-up on the dense core"
            )


def test_batched_kernel_smoke(results_dir):
    rows = [r for w in WORKLOADS for r in measure_workload(*w)]
    payload = {
        "bench": "bench_batched_kernel",
        "seed": SEED,
        "repeat": REPEAT,
        "workloads": rows,
    }
    out = results_dir / "bench_batched_kernel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    check_rows(rows)
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base_rows = {
            (r["graph"], r.get("kernel", "arcs")): r
            for r in baseline["workloads"]
        }
        for row in rows:
            base = base_rows.get((row["graph"], row["kernel"]))
            if base is None:
                continue
            assert row["speedup"] >= 0.5 * base["speedup"], (
                f"{row['graph']}/{row['kernel']}: speedup "
                f"{row['speedup']}x fell to less than half the committed "
                f"baseline {base['speedup']}x"
            )


def main(argv=None):
    """CLI entry point for the CI smoke job.

    ``--quick`` runs the shrunken workloads with a correctness check
    and lenient floors (small graphs are dispatch-bound, so the
    full-size guards would be noise there); ``--kernel`` restricts the
    run to the workloads that list that kernel on their axis, keeping
    ``arcs`` alongside it as the comparison row.
    """
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke workloads"
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "arcs", "spmm", "pull", "numba"),
        default=None,
        help="restrict to one compute kernel's workloads",
    )
    args = parser.parse_args(argv)
    workloads = QUICK_WORKLOADS if args.quick else WORKLOADS
    if args.kernel is not None and args.kernel != "auto":
        workloads = [
            (name, scale, nsrc,
             tuple(k for k in axis if k in ("arcs", args.kernel)))
            for name, scale, nsrc, axis in workloads
            if args.kernel in axis
        ]
        if not workloads:
            print(f"no workload lists kernel {args.kernel!r}; nothing to do")
            return 0
    rows = [r for w in workloads for r in measure_workload(*w)]
    print(json.dumps({"bench": "bench_batched_kernel", "quick": args.quick,
                      "kernel": args.kernel, "workloads": rows}, indent=2))
    check_rows(rows, quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
