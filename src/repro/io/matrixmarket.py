"""MatrixMarket coordinate files (``.mtx``).

Web-crawl graphs (the paper's web-BerkStan/web-Google class) are often
redistributed as MatrixMarket adjacency matrices. Only the
``matrix coordinate pattern|integer|real general|symmetric`` subset is
supported — exactly what adjacency matrices use.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = ["read_matrix_market", "write_matrix_market"]

PathLike = Union[str, Path, io.TextIOBase]


def _open_text(path: PathLike, mode: str):
    if isinstance(path, io.TextIOBase):
        return path, False
    return open(path, mode, encoding="utf-8"), True


def read_matrix_market(path: PathLike) -> CSRGraph:
    """Read an adjacency matrix in MatrixMarket coordinate format.

    ``symmetric`` files become undirected graphs, ``general`` files
    directed graphs. Entry values (for non-``pattern`` files) are
    ignored — the paper's algorithms are unweighted.
    """
    fh, owned = _open_text(path, "r")
    try:
        header = fh.readline()
        parts = header.lower().split()
        if (
            len(parts) != 5
            or parts[0] != "%%matrixmarket"
            or parts[1] != "matrix"
            or parts[2] != "coordinate"
        ):
            raise GraphFormatError(f"bad MatrixMarket header: {header!r}")
        if parts[3] not in ("pattern", "integer", "real"):
            raise GraphFormatError(f"unsupported field type {parts[3]!r}")
        if parts[4] not in ("general", "symmetric"):
            raise GraphFormatError(f"unsupported symmetry {parts[4]!r}")
        symmetric = parts[4] == "symmetric"

        size_line = None
        for line in fh:
            stripped = line.strip()
            if stripped and not stripped.startswith("%"):
                size_line = stripped
                break
        if size_line is None:
            raise GraphFormatError("missing size line")
        dims = size_line.split()
        if len(dims) != 3:
            raise GraphFormatError(f"malformed size line: {size_line!r}")
        rows, cols, nnz = (int(x) for x in dims)
        n = max(rows, cols)

        src_list, dst_list = [], []
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise GraphFormatError(
                    f"entry {lineno}: malformed record {stripped!r}"
                )
            i, j = int(fields[0]), int(fields[1])
            if not (1 <= i <= n and 1 <= j <= n):
                raise GraphFormatError(
                    f"entry {lineno}: index outside [1, {n}]"
                )
            src_list.append(i - 1)
            dst_list.append(j - 1)
        if len(src_list) != nnz:
            raise GraphFormatError(
                f"size line declares {nnz} entries, file has {len(src_list)}"
            )
    finally:
        if owned:
            fh.close()
    return CSRGraph.from_arcs(
        n,
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        directed=not symmetric,
    )


def write_matrix_market(graph: CSRGraph, path: PathLike) -> None:
    """Write the adjacency as a ``pattern`` MatrixMarket file.

    Undirected graphs are written as ``symmetric`` (lower-triangle
    entries), directed graphs as ``general``.
    """
    fh, owned = _open_text(path, "w")
    try:
        symmetry = "general" if graph.directed else "symmetric"
        fh.write(f"%%MatrixMarket matrix coordinate pattern {symmetry}\n")
        src, dst = graph.arcs()
        if not graph.directed:
            keep = src >= dst  # lower triangle by convention
            src, dst = src[keep], dst[keep]
        fh.write(f"{graph.n} {graph.n} {src.size}\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            fh.write(f"{u + 1} {v + 1}\n")
    finally:
        if owned:
            fh.close()
