"""Tests for the extension algorithms (edge BC, weighted BC, adaptive
sampling) and the score-convention utilities."""

import numpy as np
import networkx as nx
import pytest

from repro.baselines import (
    adaptive_bc,
    brandes_bc,
    edge_betweenness_bc,
    undirected_edge_scores,
    weighted_brandes_bc,
)
from repro.core.result import normalize_scores, to_networkx_convention
from repro.errors import AlgorithmError, GraphValidationError
from repro.graph.build import from_edges, from_networkx

from tests.conftest import nx_betweenness


class TestEdgeBC:
    def test_matches_networkx_undirected(self):
        for seed in range(4):
            nxg = nx.gnm_random_graph(22, 40, seed=seed)
            g = from_networkx(nxg, n=22)
            scores = edge_betweenness_bc(g)
            collapsed = undirected_edge_scores(g, scores)
            expected = nx.edge_betweenness_centrality(nxg, normalized=False)
            for (u, v), val in expected.items():
                key = (min(u, v), max(u, v))
                # ordered-pair convention: 2x networkx
                assert np.isclose(collapsed[key], 2 * val), (seed, key)

    def test_matches_networkx_directed(self):
        nxg = nx.gnm_random_graph(18, 45, seed=7, directed=True)
        g = from_networkx(nxg, n=18)
        scores = edge_betweenness_bc(g)
        src, dst = g.arcs()
        expected = nx.edge_betweenness_centrality(nxg, normalized=False)
        for u, v, val in zip(src.tolist(), dst.tolist(), scores.tolist()):
            assert np.isclose(val, expected[(u, v)]), (u, v)

    def test_path_graph_closed_form(self):
        # directed path 0->1->2->3: edge (1,2) lies on paths
        # 0-2, 0-3, 1-2, 1-3
        g = from_edges([(0, 1), (1, 2), (2, 3)], directed=True)
        scores = edge_betweenness_bc(g)
        src, dst = g.arcs()
        lookup = dict(zip(zip(src.tolist(), dst.tolist()), scores.tolist()))
        assert lookup[(0, 1)] == 3  # 0->{1,2,3}
        assert lookup[(1, 2)] == 4
        assert lookup[(2, 3)] == 3

    def test_vertex_bc_recoverable_from_edges(self):
        # δ_s(v) = Σ_out-DAG-arcs(v) contribution, so vertex BC equals
        # the sum of outgoing arc scores minus paths *starting* at v...
        # cheaper identity: total edge score mass == Σ_pairs hops
        nxg = nx.gnm_random_graph(16, 30, seed=3)
        g = from_networkx(nxg, n=16)
        scores = edge_betweenness_bc(g)
        expected = 0
        for s in range(16):
            lengths = nx.single_source_shortest_path_length(nxg, s)
            expected += sum(d for t, d in lengths.items() if t != s)
        assert np.isclose(scores.sum(), expected)

    def test_empty_graph(self):
        g = from_edges([], n=3)
        assert edge_betweenness_bc(g).size == 0


class TestWeightedBC:
    def test_unit_weights_match_unweighted(self, zoo_entry):
        name, g, _nxg = zoo_entry
        if g.n > 30:
            return  # Dijkstra loop is pure Python; keep it small
        np.testing.assert_allclose(
            weighted_brandes_bc(g),
            brandes_bc(g),
            rtol=1e-9,
            atol=1e-8,
            err_msg=name,
        )

    def test_matches_networkx_weighted(self):
        rng = np.random.default_rng(5)
        nxg = nx.gnm_random_graph(18, 40, seed=5)
        for u, v in nxg.edges():
            nxg[u][v]["weight"] = float(rng.integers(1, 6))
        g = from_networkx(nxg, n=18)
        src, dst = g.arcs()
        weights = np.asarray(
            [nxg[int(u)][int(v)]["weight"] for u, v in zip(src, dst)]
        )
        scores = weighted_brandes_bc(g, weights)
        expected = nx_betweenness_weighted(nxg)
        np.testing.assert_allclose(scores, expected, rtol=1e-9, atol=1e-8)

    def test_weights_change_routing(self):
        # square 0-1-2-3-0: heavy edge (0,1) pushes all 0<->2 traffic
        # through 3
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        src, dst = g.arcs()
        weights = np.ones(g.num_arcs)
        heavy = ((src == 0) & (dst == 1)) | ((src == 1) & (dst == 0))
        weights[heavy] = 10.0
        scores = weighted_brandes_bc(g, weights)
        assert scores[3] > scores[1]

    def test_rejects_nonpositive_weights(self):
        g = from_edges([(0, 1)])
        with pytest.raises(AlgorithmError, match="positive"):
            weighted_brandes_bc(g, np.asarray([0.0, 1.0]))

    def test_rejects_wrong_shape(self):
        g = from_edges([(0, 1)])
        with pytest.raises(GraphValidationError, match="per arc"):
            weighted_brandes_bc(g, np.ones(5))


def nx_betweenness_weighted(nxg):
    raw = nx.betweenness_centrality(nxg, normalized=False, weight="weight")
    out = np.zeros(nxg.number_of_nodes())
    for v, s in raw.items():
        out[v] = s
    if not nxg.is_directed():
        out *= 2
    return out


class TestAdaptive:
    def test_converges_fast_on_central_vertex(self):
        # star hub: every pivot contributes ~n-2 dependency, so the
        # c·n cutoff fires after a handful of samples
        g = from_edges([(0, i) for i in range(1, 40)])
        est = adaptive_bc(g, 0, c=2.0, seed=1)
        assert est.converged
        assert est.samples < 20
        exact = brandes_bc(g)[0]
        assert abs(est.estimate - exact) / exact < 0.5

    def test_exhausts_on_peripheral_vertex(self):
        g = from_edges([(0, i) for i in range(1, 15)])
        est = adaptive_bc(g, 3, c=2.0, seed=1)  # a leaf: BC = 0
        assert not est.converged
        assert est.samples == g.n
        assert est.estimate == 0.0

    def test_budget_cap(self):
        g = from_edges([(i, i + 1) for i in range(30)])
        est = adaptive_bc(g, 1, c=100.0, max_fraction=0.2, seed=2)
        assert est.samples <= int(np.ceil(0.2 * g.n))

    def test_validation(self):
        g = from_edges([(0, 1)])
        with pytest.raises(AlgorithmError, match="outside"):
            adaptive_bc(g, 5)
        with pytest.raises(AlgorithmError, match="c must be"):
            adaptive_bc(g, 0, c=0)
        with pytest.raises(AlgorithmError, match="max_fraction"):
            adaptive_bc(g, 0, max_fraction=0.0)


class TestConventions:
    def test_normalize_range(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        if g.n < 3:
            return
        norm = normalize_scores(brandes_bc(g))
        assert (norm >= -1e-12).all()
        assert (norm <= 1.0 + 1e-12).all()

    def test_normalize_matches_networkx(self):
        nxg = nx.gnm_random_graph(20, 40, seed=9)
        g = from_networkx(nxg, n=20)
        norm = normalize_scores(brandes_bc(g))
        expected = nx.betweenness_centrality(nxg, normalized=True)
        for v, val in expected.items():
            assert np.isclose(norm[v], val)

    def test_networkx_convention(self):
        g = from_edges([(0, 1), (1, 2)])
        raw = brandes_bc(g)
        halved = to_networkx_convention(raw, directed=False)
        np.testing.assert_allclose(halved, raw / 2)
        gd = from_edges([(0, 1), (1, 2)], directed=True)
        raw_d = brandes_bc(gd)
        np.testing.assert_allclose(
            to_networkx_convention(raw_d, directed=True), raw_d
        )

    def test_normalize_tiny(self):
        assert normalize_scores(np.zeros(2)).tolist() == [0, 0]


class TestAlgebraic:
    """The CombBLAS-style batched baseline (paper related-work [23])."""

    def test_matches_brandes_on_zoo(self, zoo_entry):
        from repro.baselines import algebraic_bc

        name, g, _nxg = zoo_entry
        np.testing.assert_allclose(
            algebraic_bc(g, batch=8),
            brandes_bc(g),
            rtol=1e-7,
            atol=1e-7,
            err_msg=name,
        )

    def test_batch_size_invariance(self, und_random):
        from repro.baselines import algebraic_bc

        ref = algebraic_bc(und_random, batch=und_random.n)
        for batch in (1, 3, 7, 64):
            np.testing.assert_allclose(
                algebraic_bc(und_random, batch=batch), ref, rtol=1e-9
            )

    def test_invalid_batch(self, und_random):
        from repro.baselines import algebraic_bc

        with pytest.raises(AlgorithmError, match="batch"):
            algebraic_bc(und_random, batch=0)

    def test_empty_graph(self):
        from repro.baselines import algebraic_bc

        assert algebraic_bc(from_edges([], n=0)).size == 0
        assert algebraic_bc(from_edges([], n=4)).tolist() == [0, 0, 0, 0]

    def test_counter_counts_per_level_sweeps(self):
        from repro.baselines import algebraic_bc
        from repro.baselines.common import WorkCounter

        g = from_edges([(0, 1), (1, 2)], directed=True)
        counter = WorkCounter()
        algebraic_bc(g, batch=3, counter=counter)
        # forward + backward sweeps each touch all nnz per level
        assert counter.edges > 0
        assert counter.edges % g.num_arcs == 0

    def test_registered(self):
        from repro.baselines import get_algorithm

        fn = get_algorithm("algebraic")
        g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        np.testing.assert_allclose(fn(g), brandes_bc(g), rtol=1e-9)
