"""POSIX shared-memory arrays.

With the ``fork`` start method the read-only graph is shared for free
(copy-on-write pages), so the pool never strictly needs this module.
It exists for the two situations where fork is unavailable or
insufficient: ``spawn``-only platforms (broadcasting the CSR arrays
without per-task pickling) and *writeback* buffers that must outlive a
worker — the batched pool's per-worker score slots
(:mod:`repro.parallel.batched_pool`) are exactly that.  The wrapper
owns the segment lifecycle explicitly because the interpreter does not
reliably garbage-collect shared memory at exit: every instance carries
a :mod:`weakref` finalizer that closes (and, for the creating process,
unlinks) the segment if the owner forgets to, so an exception anywhere
between ``create`` and ``unlink`` cannot leak a ``/dev/shm`` segment
for the lifetime of the machine.

All segments created here are named ``repro-bc-<creator pid>-<hex>``,
so a segment orphaned by ``kill -9`` (the one case no finalizer can
cover — SIGKILL runs nothing) is identifiable afterwards:
:func:`list_orphans` scans the shared-memory filesystem for segments
whose embedded creator pid is no longer alive and
:func:`collect_orphans` removes them (the ``repro gc`` CLI
subcommand).
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "SharedArray",
    "OrphanSegment",
    "list_orphans",
    "collect_orphans",
]

#: Segment name prefix; the full pattern is
#: ``repro-bc-<creator pid>-<8 hex chars>``.
SEGMENT_PREFIX = "repro-bc"

#: Where POSIX shared memory appears as files (Linux).  gc helpers
#: take it as a parameter so tests can point them at a scratch dir.
DEFAULT_SHM_DIR = "/dev/shm"


def _cleanup(shm: shared_memory.SharedMemory, owner: bool, pid: int) -> None:
    """Finalizer body: close this mapping, unlink if we created it.

    The ``pid`` guard matters under ``fork``: children inherit the
    parent's ``SharedArray`` objects, and a child exiting normally runs
    the inherited finalizers — without the guard it would unlink the
    segment out from under the parent and its siblings.
    """
    try:
        shm.close()
    except OSError:  # pragma: no cover - already closed
        pass
    if owner and os.getpid() == pid:
        try:
            shm.unlink()
        except FileNotFoundError:  # already unlinked explicitly
            pass


class SharedArray:
    """A numpy array backed by a named POSIX shared-memory segment.

    Usage::

        owner = SharedArray.create((n,), np.float64)   # parent
        view  = SharedArray.attach(owner.name, (n,), np.float64)  # child
        ...
        view.close()      # every attacher
        owner.unlink()    # owner only, once

    or, scope the whole lifecycle (close + owner unlink) with a
    ``with`` block::

        with SharedArray.create((n,), np.float64) as buf:
            buf.array[:] = scores

    The array is exposed via :attr:`array`; it remains valid until
    :meth:`close`.  Instances also carry a finalizer so a leaked
    reference is cleaned up at garbage collection / interpreter exit
    (creating process only — forked children never unlink).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: Tuple[int, ...],
        dtype,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self.array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        import weakref

        self._finalizer = weakref.finalize(
            self, _cleanup, shm, owner, os.getpid()
        )

    @classmethod
    def create(cls, shape: Tuple[int, ...], dtype) -> "SharedArray":
        """Allocate a zero-initialised shared array (caller owns it).

        The segment is named ``repro-bc-<pid>-<hex>`` so that, should
        this process die by SIGKILL before unlinking (no finalizer
        runs), :func:`list_orphans`/:func:`collect_orphans` can
        identify and reclaim it from the creator pid in the name.
        """
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        shm = None
        for _ in range(8):
            name = (
                f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
            )
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(nbytes, 1)
                )
                break
            except FileExistsError:  # pragma: no cover - 2^32 collision
                continue
        if shm is None:  # pragma: no cover - eight collisions in a row
            shm = shared_memory.SharedMemory(
                create=True, size=max(nbytes, 1)
            )
        out = cls(shm, shape, dtype, owner=True)
        out.array.fill(0)
        return out

    @classmethod
    def attach(
        cls, name: str, shape: Tuple[int, ...], dtype
    ) -> "SharedArray":
        """Attach to an existing segment by name (non-owning view)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, shape, dtype, owner=False)

    @property
    def name(self) -> str:
        """Segment name to hand to :meth:`attach` in another process."""
        return self._shm.name

    @property
    def owner(self) -> bool:
        """Whether this instance created (and must unlink) the segment."""
        return self._owner

    def close(self) -> None:
        """Release this process's mapping (array becomes invalid)."""
        if self._closed:
            return
        self._closed = True
        # drop the numpy view first: closing a mapped buffer raises
        self.array = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after close)."""
        if self._owner and not self._unlinked:
            self._unlinked = True
            self._finalizer.detach()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - lost race
                pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            self.unlink()


# ----------------------------------------------------------------------
# orphan reclamation (the `repro gc` subcommand)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OrphanSegment:
    """One shared-memory segment whose creating process is gone."""

    name: str
    path: str
    pid: int
    size: int


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, but owned by someone else
        return True
    return True


def list_orphans(
    shm_dir: Union[str, Path] = DEFAULT_SHM_DIR,
) -> List[OrphanSegment]:
    """Scan ``shm_dir`` for dead-creator ``repro-bc-*`` segments.

    Only segments matching this module's naming scheme are considered
    — foreign shared memory is never touched — and a segment counts as
    orphaned only when its embedded creator pid is no longer alive, so
    concurrent live runs are safe from a parallel ``repro gc``.
    """
    orphans: List[OrphanSegment] = []
    try:
        entries = sorted(os.listdir(shm_dir))
    except OSError:
        return orphans
    for entry in entries:
        if not entry.startswith(SEGMENT_PREFIX + "-"):
            continue
        parts = entry.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if _pid_alive(pid):
            continue
        path = os.path.join(str(shm_dir), entry)
        try:
            size = os.stat(path).st_size
        except OSError:
            continue  # gone between listdir and stat
        orphans.append(
            OrphanSegment(name=entry, path=path, pid=pid, size=size)
        )
    return orphans


def collect_orphans(
    shm_dir: Union[str, Path] = DEFAULT_SHM_DIR,
) -> List[OrphanSegment]:
    """Remove every orphan :func:`list_orphans` finds; returns them.

    Removal unlinks the backing file directly (not via
    ``SharedMemory.unlink``) so the resource tracker of *this* process
    is never involved with segments it does not own.
    """
    removed: List[OrphanSegment] = []
    for orphan in list_orphans(shm_dir):
        try:
            os.unlink(orphan.path)
        except OSError:  # pragma: no cover - raced with another gc
            continue
        removed.append(orphan)
    return removed
