"""Ablation A3 — vertex-ordering (locality) effect.

The paper's related work [24] (Cong & Makarychev) improves BC via
node re-layout. This ablation measures the effect of BFS/Cuthill–McKee
vs degree vs random placement on APGRE's runtime over the road
analogue (high-diameter lattices are where layout matters most for
CSR traversal).
"""

import time

import numpy as np
import pytest

from repro.bench.runner import ExperimentResult
from repro.bench.workloads import bench_graph_names, get_graph
from repro.core.apgre import apgre_bc
from repro.graph.ordering import (
    apply_ordering,
    bfs_order,
    degree_order,
    random_order,
)

from conftest import one_shot

_NAME = "USA-roadNY" if "USA-roadNY" in bench_graph_names() else bench_graph_names()[0]

_ORDERINGS = {
    "original": None,
    "bfs (Cuthill-McKee)": bfs_order,
    "degree (hubs first)": degree_order,
    "random shuffle": lambda g: random_order(g, seed=11),
}


@pytest.mark.parametrize("label", list(_ORDERINGS))
def test_apgre_under_ordering(benchmark, label):
    graph = get_graph(_NAME)
    maker = _ORDERINGS[label]
    if maker is not None:
        graph, _inv = apply_ordering(graph, maker(graph))
    scores = one_shot(benchmark, apgre_bc, graph)
    assert scores.shape == (graph.n,)
    benchmark.group = f"ordering-{_NAME}"


def test_report_ablation_ordering(benchmark, report):
    def _run():
        graph = get_graph(_NAME)
        reference = None
        rows = []
        for label, maker in _ORDERINGS.items():
            work = graph
            inverse = None
            if maker is not None:
                work, inverse = apply_ordering(graph, maker(graph))
            t0 = time.perf_counter()
            scores = apgre_bc(work)
            elapsed = time.perf_counter() - t0
            if inverse is not None:
                scores = scores[inverse]
            if reference is None:
                reference = scores
            assert np.allclose(scores, reference, rtol=1e-8, atol=1e-8)
            rows.append([label, elapsed])
        return ExperimentResult(
            exp_id="Ablation A3",
            title=f"Vertex-ordering effect on APGRE ({_NAME})",
            headers=["ordering", "seconds"],
            rows=rows,
            notes="scores are identical under every ordering (asserted)",
        )

    result = one_shot(benchmark, _run)
    report(result)
