"""The warm-path BC serving daemon (stdlib HTTP, TCP or unix socket).

A long-lived process loads one graph, then keeps everything a cold CLI
invocation pays for over and over resident across requests:

* the graph itself and its per-config decomposition (partition + α/β),
  memoised on the current :class:`~repro.serve.snapshots.Snapshot`;
* the shared :class:`~repro.cache.store.ContributionStore`, so any
  recompute replays clean sub-graph contributions;
* a :class:`~repro.serve.score_lru.ScoreLRU` of assembled final
  vectors keyed by (graph version, config fingerprint), so a repeat
  query is a dictionary lookup.

Endpoints (all responses JSON, every data response carries the graph
``version`` it was served from):

``GET /healthz``
    Liveness: status, version, uptime, in-flight count, drain state.
``GET /stats``
    The full observability surface: request counters, snapshot
    residency, score-LRU and ContributionStore counters, the merged
    :class:`~repro.parallel.supervisor.RunHealth` of every computed
    request, exact edge tallies (traversed vs replayed), and the
    backend/kernel registry report of :mod:`repro.introspect`.
``GET /bc``
    Full BC under the request's config (query parameters — see
    :mod:`repro.serve.protocol`): ``top=k`` ranks (default) or
    ``full=1`` for the whole vector.
``GET /vertex/<id>``
    One vertex's score.
``POST /delta``
    Apply a streamed edge delta through
    :func:`repro.cache.incremental.apgre_bc_delta` and publish the
    successor graph version.  Writers serialise on one lock; readers
    keep their pinned versions until they drain (docs/SERVING.md).

Concurrency model: ``ThreadingHTTPServer`` runs one handler thread
per connection.  Identical in-flight queries collapse to one compute
(per-key singleflight locks); the delta path is single-writer.  The
daemon never installs signal handlers itself — the CLI wires
SIGINT/SIGTERM to ``shutdown()`` so in-flight requests finish and the
process exits 0 (``block_on_close`` joins the handler threads).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro._version import __version__
from repro.errors import (
    ReproError,
    ServeError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.serve.protocol import (
    RequestParams,
    build_config,
    config_fingerprint,
    parse_delta_body,
)
from repro.serve.score_lru import ScoreEntry, ScoreLRU
from repro.serve.snapshots import SnapshotManager

__all__ = ["ServerState", "BCRequestHandler", "make_server"]


def health_dict(health) -> Dict:
    """A :class:`~repro.parallel.supervisor.RunHealth` as JSON fields."""
    return {
        "tasks": health.tasks,
        "pool_ok": health.pool_ok,
        "retries": health.retries,
        "steals": health.steals,
        "worker_crashes": health.worker_crashes,
        "timeouts": health.timeouts,
        "task_errors": health.task_errors,
        "corrupt_results": health.corrupt_results,
        "serial_retries": health.serial_retries,
        "workers_spawned": health.workers_spawned,
        "pool_abandoned": health.pool_abandoned,
        "drained_serial": health.drained_serial,
        "fallback_path": health.fallback_path,
        "interrupted": health.interrupted,
        "degraded": health.degraded,
        "summary": health.summary(),
    }


def _compute_fresh(graph, config):
    """Module-level compute for the fork-isolated path (``isolate=1``).

    The forked child cannot see the parent's snapshot memo, so it pays
    partition + α/β itself — the price of crash isolation.
    """
    from repro.core.apgre import apgre_bc_detailed

    return apgre_bc_detailed(graph, config)


class ServerState:
    """Everything the daemon keeps warm, plus its counters.

    Shared by every handler thread; the internal lock covers only the
    scalar counters — the snapshot manager, score LRU and contribution
    store each carry their own locking.
    """

    def __init__(
        self,
        graph,
        *,
        base_config=None,
        store=None,
        lru: Optional[ScoreLRU] = None,
        name: str = "",
        source: Optional[str] = None,
    ) -> None:
        from repro.core.config import APGREConfig
        from repro.parallel.supervisor import RunHealth

        self.lru = lru if lru is not None else ScoreLRU()
        self.manager = SnapshotManager(
            graph, on_retire=self.lru.purge_version
        )
        self.store = store
        self.base_config = base_config or APGREConfig()
        self.name = name
        self.source = source
        self.started = time.time()
        self.delta_lock = threading.Lock()
        self.health = RunHealth()
        self._lock = threading.Lock()
        self._flights: Dict[Tuple[int, str], threading.Lock] = {}
        self.requests: Dict[str, int] = {}
        self.error_responses = 0
        self.in_flight = 0
        self.draining = False
        self.computed_vectors = 0
        self.edges_traversed = 0
        self.edges_replayed = 0
        self.deltas_rejected = 0

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def count_request(self, endpoint: str) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def _flight_lock(self, key: Tuple[int, str]) -> threading.Lock:
        with self._lock:
            lock = self._flights.get(key)
            if lock is None:
                lock = threading.Lock()
                self._flights[key] = lock
            return lock

    # ------------------------------------------------------------------
    # the warm path
    # ------------------------------------------------------------------
    def scores_for(
        self, snap, params: RequestParams
    ) -> Tuple[ScoreEntry, str, bool]:
        """The (entry, fingerprint, was_cached) triple for one request.

        Identical concurrent requests collapse onto one compute: the
        per-(version, fingerprint) lock makes the first thread compute
        and admit while the rest wait, then hit the LRU.  ``fresh=1``
        skips the LRU read (still admits) to force the
        ContributionStore replay path.
        """
        config = build_config(params, self.base_config, self.store)
        fp = config_fingerprint(config)
        key = (snap.version, fp)
        with self._flight_lock(key):
            if not params.fresh:
                entry = self.lru.get(*key)
                if entry is not None:
                    return entry, fp, True
            entry = self._compute(snap, config, params, fp)
            return entry, fp, False

    def _compute(self, snap, config, params: RequestParams, fp: str):
        from repro.core.apgre import apgre_bc_detailed
        from repro.parallel.supervisor import call_with_timeout

        t0 = time.perf_counter()
        if params.isolate:
            budget = (
                params.timeout
                if params.timeout is not None
                else config.timeout
            )
            result = call_with_timeout(
                _compute_fresh, snap.graph, config, timeout=budget
            )
        else:
            result = apgre_bc_detailed(
                snap.graph, config, partition=snap.partition_for(config)
            )
        elapsed = time.perf_counter() - t0
        with self._lock:
            self.computed_vectors += 1
            self.edges_traversed += result.stats.edges_traversed
            self.edges_replayed += result.stats.edges_replayed
            if result.health is not None:
                self.health.merge(result.health)
        meta = {
            "elapsed_seconds": elapsed,
            "edges_traversed": result.stats.edges_traversed,
            "edges_replayed": result.stats.edges_replayed,
            "subgraphs_replayed": result.stats.subgraphs_replayed,
            "subgraphs_recomputed": result.stats.subgraphs_recomputed,
            "degraded": bool(
                result.health is not None and result.health.degraded
            ),
            "isolated": bool(params.isolate),
        }
        return self.lru.put(snap.version, fp, result.scores, meta)

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def apply_delta(self, added, removed) -> Dict:
        """Apply one edge delta and publish the successor version.

        Single-writer: the lock is held across recompute *and*
        advance, so versions commit in submission order and every
        version number corresponds to exactly one delta.  The delta
        result's score vector is admitted to the LRU under the base
        config's fingerprint, so the first read of the new version is
        already warm.
        """
        from repro.cache.incremental import apgre_bc_delta

        if self.store is None:
            raise ServeError(
                "this daemon runs cache-free (--no-cache); the delta "
                "endpoint needs the contribution store",
                http_status=409,
            )
        with self.delta_lock:
            snap = self.manager.current()
            t0 = time.perf_counter()
            dr = apgre_bc_delta(
                snap.graph,
                edges_added=added,
                edges_removed=removed,
                cache=self.store,
                config=self.base_config,
            )
            elapsed = time.perf_counter() - t0
            new_snap = self.manager.advance(dr.graph)
            stats = dr.result.stats
            with self._lock:
                self.computed_vectors += 1
                self.edges_traversed += stats.edges_traversed
                self.edges_replayed += stats.edges_replayed
                if dr.result.health is not None:
                    self.health.merge(dr.result.health)
            config = build_config(
                RequestParams(), self.base_config, self.store
            )
            self.lru.put(
                new_snap.version,
                config_fingerprint(config),
                dr.result.scores,
                {
                    "elapsed_seconds": elapsed,
                    "edges_traversed": stats.edges_traversed,
                    "edges_replayed": stats.edges_replayed,
                    "subgraphs_replayed": stats.subgraphs_replayed,
                    "subgraphs_recomputed": stats.subgraphs_recomputed,
                    "degraded": False,
                    "delta": True,
                },
            )
            return {
                "from_version": snap.version,
                "version": new_snap.version,
                "edges_added": int(added.shape[0]),
                "edges_removed": int(removed.shape[0]),
                "vertices": int(dr.graph.n),
                "arcs": int(dr.graph.num_arcs),
                "elapsed_seconds": elapsed,
                "subgraphs_replayed": stats.subgraphs_replayed,
                "subgraphs_recomputed": stats.subgraphs_recomputed,
                "edges_traversed": stats.edges_traversed,
                "edges_replayed": stats.edges_replayed,
            }

    # ------------------------------------------------------------------
    # observability payloads
    # ------------------------------------------------------------------
    def healthz_payload(self) -> Dict:
        with self._lock:
            in_flight = self.in_flight
            draining = self.draining
        return {
            "status": "draining" if draining else "ok",
            "version": self.manager.version,
            "uptime_seconds": time.time() - self.started,
            "in_flight": in_flight,
            "draining": draining,
        }

    def stats_payload(self) -> Dict:
        from repro.introspect import registry_payload

        snap = self.manager.current()
        with self._lock:
            requests = dict(self.requests)
            payload_counters = {
                "computed_vectors": self.computed_vectors,
                "error_responses": self.error_responses,
                "deltas_rejected": self.deltas_rejected,
                "in_flight": self.in_flight,
                "draining": self.draining,
            }
            edges = {
                "traversed": self.edges_traversed,
                "replayed": self.edges_replayed,
            }
            health = health_dict(self.health)
        return {
            "server": {
                "name": self.name,
                "source": self.source,
                "uptime_seconds": time.time() - self.started,
                "requests": requests,
                **payload_counters,
            },
            "graph": {
                "version": snap.version,
                "vertices": int(snap.graph.n),
                "arcs": int(snap.graph.num_arcs),
                "directed": bool(snap.graph.directed),
                "fingerprint": snap.fingerprint,
            },
            "snapshots": self.manager.report(),
            "score_lru": self.lru.stats(),
            "contribution_store": (
                self.store.stats() if self.store is not None else None
            ),
            "edges": edges,
            "health": health,
            "registries": registry_payload(),
            "repro_version": __version__,
        }


class BCRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request against the shared :class:`ServerState`."""

    server_version = f"repro-bc-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    @property
    def state(self) -> ServerState:
        return self.server.state  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def address_string(self) -> str:  # unix sockets have no peer tuple
        if isinstance(self.client_address, tuple) and self.client_address:
            return str(self.client_address[0])
        return "local"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        # one request per connection: a drain must never wait on an
        # idle keep-alive client holding its handler thread open
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        self.wfile.write(body)
        if status >= 400:
            with self.state._lock:
                self.state.error_responses += 1

    def _fail(self, exc: BaseException) -> None:
        if isinstance(exc, ServeError):
            status = exc.http_status
        elif isinstance(exc, TaskTimeoutError):
            status = 503
        elif isinstance(exc, WorkerCrashError):
            status = 500
        elif isinstance(exc, ReproError):
            status = 400
        else:
            status = 500
        self._send_json(
            status, {"error": str(exc), "type": type(exc).__name__}
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query, keep_blank_values=True)
        with self.state._lock:
            self.state.in_flight += 1
        try:
            if path == "/healthz":
                self.state.count_request("healthz")
                self._send_json(200, self.state.healthz_payload())
            elif path == "/stats":
                self.state.count_request("stats")
                self._send_json(200, self.state.stats_payload())
            elif path == "/bc":
                self.state.count_request("bc")
                self._handle_bc(query)
            elif path.startswith("/vertex/"):
                self.state.count_request("vertex")
                self._handle_vertex(path[len("/vertex/"):], query)
            else:
                self._send_json(
                    404,
                    {
                        "error": f"unknown path {split.path!r}",
                        "paths": [
                            "/healthz", "/stats", "/bc",
                            "/vertex/<id>", "/delta",
                        ],
                    },
                )
        except BrokenPipeError:  # client went away mid-response
            pass
        except BaseException as exc:  # noqa: BLE001 - boundary
            try:
                self._fail(exc)
            except BrokenPipeError:
                pass
        finally:
            with self.state._lock:
                self.state.in_flight -= 1

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        split = urlsplit(self.path)
        path = split.path.rstrip("/")
        with self.state._lock:
            self.state.in_flight += 1
        try:
            if path == "/delta":
                self.state.count_request("delta")
                self._handle_delta()
            else:
                self._send_json(
                    404, {"error": f"unknown POST path {split.path!r}"}
                )
        except BrokenPipeError:
            pass
        except BaseException as exc:  # noqa: BLE001 - boundary
            if path == "/delta":
                with self.state._lock:
                    self.state.deltas_rejected += 1
            try:
                self._fail(exc)
            except BrokenPipeError:
                pass
        finally:
            with self.state._lock:
                self.state.in_flight -= 1

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _handle_bc(self, query: Dict) -> None:
        params = RequestParams.from_query(query)
        with self.state.manager.acquire(params.version) as snap:
            entry, fp, cached = self.state.scores_for(snap, params)
            payload: Dict = {
                "version": snap.version,
                "config_fingerprint": fp,
                "cached": cached,
                "vertices": int(snap.graph.n),
                "meta": entry.meta,
            }
            if params.full:
                payload["scores"] = entry.scores.tolist()
            else:
                import numpy as np

                k = min(params.top, entry.scores.size)
                order = np.argsort(-entry.scores)[:k]
                payload["top"] = [
                    [int(v), float(entry.scores[v])]
                    for v in order.tolist()
                ]
            self._send_json(200, payload)

    def _handle_vertex(self, raw_id: str, query: Dict) -> None:
        params = RequestParams.from_query(query)
        try:
            vertex = int(raw_id)
        except ValueError:
            raise ServeError(
                f"vertex id must be an integer, got {raw_id!r}"
            ) from None
        with self.state.manager.acquire(params.version) as snap:
            if not 0 <= vertex < snap.graph.n:
                raise ServeError(
                    f"vertex {vertex} out of range [0, {snap.graph.n})",
                    http_status=404,
                )
            entry, fp, cached = self.state.scores_for(snap, params)
            self._send_json(
                200,
                {
                    "version": snap.version,
                    "config_fingerprint": fp,
                    "cached": cached,
                    "vertex": vertex,
                    "score": float(entry.scores[vertex]),
                },
            )

    def _handle_delta(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        added, removed = parse_delta_body(
            body, self.headers.get("Content-Type", "")
        )
        if added.size == 0 and removed.size == 0:
            raise ServeError("empty delta (no add/remove operations)")
        self._send_json(200, self.state.apply_delta(added, removed))


class BCHTTPServer(ThreadingHTTPServer):
    """TCP server: one handler thread per connection, clean drain.

    ``daemon_threads=False`` + ``block_on_close=True`` make
    ``server_close()`` join in-flight handlers — the SIGTERM drain
    contract (docs/SERVING.md).
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    verbose = False


class BCUnixServer(BCHTTPServer):
    """The same daemon on a unix domain socket (local, no TCP port)."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        path = self.server_address
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(path)
            except OSError:
                os.unlink(path)  # stale socket from a dead daemon
            else:
                probe.close()
                raise ServeError(
                    f"unix socket {path} already has a live listener",
                    http_status=409,
                )
            finally:
                probe.close()
        self.socket.bind(path)
        self.server_name = str(path)
        self.server_port = 0

    def server_close(self) -> None:
        super().server_close()
        try:
            os.unlink(self.server_address)
        except OSError:
            pass


def make_server(
    graph,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_socket: Optional[str] = None,
    base_config=None,
    store=None,
    lru: Optional[ScoreLRU] = None,
    name: str = "",
    source: Optional[str] = None,
    verbose: bool = False,
):
    """Build a ready-to-serve daemon; does not start the accept loop.

    Returns a :class:`BCHTTPServer` (or :class:`BCUnixServer` when
    ``unix_socket`` is given) whose ``state`` attribute holds the
    shared :class:`ServerState`.  ``port=0`` binds an ephemeral TCP
    port (read it back from ``server.server_address``).  Call
    ``serve_forever()`` to run and ``shutdown()`` + ``server_close()``
    to drain.
    """
    state = ServerState(
        graph,
        base_config=base_config,
        store=store,
        lru=lru,
        name=name,
        source=source,
    )
    try:
        if unix_socket is not None:
            server = BCUnixServer(str(unix_socket), BCRequestHandler)
        else:
            server = BCHTTPServer((host, port), BCRequestHandler)
    except OSError as exc:
        raise ServeError(
            f"cannot bind serving address "
            f"{unix_socket or f'{host}:{port}'}: {exc}",
            http_status=409,
        ) from exc
    server.state = state
    server.verbose = verbose
    return server
