"""Tests for the four-dependency kernel against direct definitions.

The paper defines each dependency as an explicit sum over pair
dependencies (σ_st(v)/σ_st weighted by α/β); these tests compute those
sums from networkx shortest-path counts and check the fused kernel
reproduces them exactly.
"""

import numpy as np
import networkx as nx
import pytest

from repro.baselines.common import WorkCounter
from repro.core.dependencies import accumulate_four_dependencies
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import graph_partition
from repro.errors import AlgorithmError
from repro.graph.build import from_networkx
from repro.graph.convert import to_networkx
from repro.graph.traversal import bfs_sigma


def sigma_matrix(nxg, n):
    """σ[s][t] shortest-path counts for all pairs (0 if unreachable)."""
    sig = np.zeros((n, n))
    for s in range(n):
        sig[s, s] = 1
        lengths = nx.single_source_shortest_path_length(nxg, s)
        for t in lengths:
            if t != s:
                sig[s, t] = len(list(nx.all_shortest_paths(nxg, s, t)))
    return sig


def sigma_through(nxg, n, sig, s, v, t):
    """σ_st(v): shortest paths from s to t through interior v."""
    if v in (s, t):
        return 0.0
    lengths_s = nx.single_source_shortest_path_length(nxg, s)
    if t not in lengths_s or v not in lengths_s:
        return 0.0
    lengths_v = nx.single_source_shortest_path_length(nxg, v)
    if t not in lengths_v:
        return 0.0
    if lengths_s[v] + lengths_v[t] != lengths_s[t]:
        return 0.0
    return sig[s, v] * sig[v, t]


@pytest.mark.parametrize("directed", [False, True])
def test_four_dependencies_match_definitions(directed):
    """On every sub-graph of a random graph, each dependency array
    equals its defining sum."""
    nxg = nx.gnm_random_graph(26, 34, seed=3, directed=directed)
    g = from_networkx(nxg, n=26)
    partition = graph_partition(g)
    compute_alpha_beta(g, partition, method="bfs")
    for sg in partition.subgraphs:
        local = sg.graph
        if local.n < 2:
            continue
        nxl = to_networkx(local)
        sig = sigma_matrix(nxl, local.n)
        arts = set(sg.boundary_arts().tolist())
        for s in sg.roots.tolist()[:6]:
            res = bfs_sigma(local, s, keep_level_arcs=True)
            dep = accumulate_four_dependencies(
                res,
                alpha=sg.alpha,
                beta=sg.beta,
                is_art=sg.is_boundary_art,
            )
            reached = np.flatnonzero(res.dist >= 0)
            for v in reached.tolist():
                if v == s:
                    continue
                # in2in: Σ_t σ_st(v)/σ_st
                i2i = sum(
                    sigma_through(nxl, local.n, sig, s, v, t) / sig[s, t]
                    for t in range(local.n)
                    if sig[s, t] > 0
                )
                assert np.isclose(dep.delta_i2i[v], i2i), (s, v, "i2i")
                # in2out: Σ_a (σ_sa(v)/σ_sa + [v==a]) α(a)
                i2o = 0.0
                for a in arts:
                    if a == s or sig[s, a] == 0:
                        continue
                    if v == a:
                        i2o += float(sg.alpha[a])
                    else:
                        i2o += (
                            sigma_through(nxl, local.n, sig, s, v, a)
                            / sig[s, a]
                            * float(sg.alpha[a])
                        )
                assert np.isclose(dep.delta_i2o[v], i2o), (s, v, "i2o")
                # out2out
                if dep.source_is_art:
                    o2o = 0.0
                    for a in arts:
                        if a == s or sig[s, a] == 0:
                            continue
                        w = float(sg.beta[s]) * float(sg.alpha[a])
                        if v == a:
                            o2o += w
                        else:
                            o2o += (
                                sigma_through(nxl, local.n, sig, s, v, a)
                                / sig[s, a]
                                * w
                            )
                    assert np.isclose(dep.delta_o2o[v], o2o), (s, v, "o2o")
                else:
                    assert dep.delta_o2o[v] == 0


def test_size_o2i_is_beta_for_art_sources(und_random):
    partition = graph_partition(und_random)
    compute_alpha_beta(und_random, partition)
    for sg in partition.subgraphs:
        for s in sg.roots.tolist():
            res = bfs_sigma(sg.graph, s, keep_level_arcs=True)
            dep = accumulate_four_dependencies(
                res, alpha=sg.alpha, beta=sg.beta, is_art=sg.is_boundary_art
            )
            if sg.is_boundary_art[s]:
                assert dep.size_o2i == float(sg.beta[s])
            else:
                assert dep.size_o2i == 0.0


def test_requires_level_arcs(und_random):
    res = bfs_sigma(und_random, 0)  # no level arcs kept
    n = und_random.n
    with pytest.raises(AlgorithmError, match="keep_level_arcs"):
        accumulate_four_dependencies(
            res,
            alpha=np.zeros(n),
            beta=np.zeros(n),
            is_art=np.zeros(n, dtype=bool),
        )


def test_counter_counts_dag_arcs(und_random):
    res = bfs_sigma(und_random, 0, keep_level_arcs=True)
    counter = WorkCounter()
    n = und_random.n
    accumulate_four_dependencies(
        res,
        alpha=np.zeros(n),
        beta=np.zeros(n),
        is_art=np.zeros(n, dtype=bool),
        counter=counter,
    )
    dag_arcs = sum(src.size for src, _dst in res.level_arcs)
    assert counter.edges == dag_arcs
