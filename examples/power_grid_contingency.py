#!/usr/bin/env python
"""Power-grid contingency screening with betweenness centrality.

The paper's introduction cites "contingency analysis for power grid
component failures" (Jin et al., IPDPS'10) as a BC application: buses
whose removal most disrupts shortest electrical paths are the ones to
watch. This example builds a synthetic transmission grid — meshed
regional networks joined by inter-tie lines, with radial distribution
feeders hanging off substations — then:

1. ranks buses by exact BC (APGRE; the radial feeders are exactly the
   pendant/articulation structure APGRE eliminates),
2. simulates an N-1 contingency for the top-ranked buses, measuring
   how many bus pairs lose connectivity when each fails.

Run:  python examples/power_grid_contingency.py
"""

import numpy as np

from repro import apgre_bc, apgre_bc_detailed
from repro.graph import CSRGraph, connected_components, from_edges
from repro.graph.ops import induced_subgraph
from repro.types import as_rng


def synthetic_grid(
    regions: int = 4,
    buses_per_region: int = 30,
    feeders_per_region: int = 12,
    seed: int = 13,
) -> CSRGraph:
    """Meshed regions + inter-ties + radial feeders."""
    rng = as_rng(seed)
    edges = []
    offset = 0
    gateways = []
    for _r in range(regions):
        ids = np.arange(offset, offset + buses_per_region)
        # a ring for reliability, plus random internal meshing
        for i in range(buses_per_region):
            edges.append((int(ids[i]), int(ids[(i + 1) % buses_per_region])))
        for _ in range(buses_per_region // 2):
            a, b = rng.integers(0, buses_per_region, size=2)
            if a != b:
                edges.append((int(ids[a]), int(ids[b])))
        gateways.append(int(ids[rng.integers(0, buses_per_region)]))
        offset += buses_per_region
    # inter-ties: a sparse chain of single lines between regions —
    # their endpoints become articulation points
    for r in range(1, regions):
        edges.append((gateways[r - 1], gateways[r]))
    # radial feeders: short pendant chains off random buses
    n_core = offset
    for _r in range(regions):
        for _f in range(feeders_per_region):
            anchor = int(rng.integers(0, n_core))
            length = int(rng.integers(1, 4))
            prev = anchor
            for _hop in range(length):
                edges.append((prev, offset))
                prev = offset
                offset += 1
    return from_edges(edges, n=offset, directed=False)


def pairs_disconnected(graph: CSRGraph, bus: int) -> int:
    """Connected bus pairs lost when ``bus`` fails (N-1 contingency)."""
    def connected_pairs(g: CSRGraph) -> int:
        labels, k = connected_components(g)
        sizes = np.bincount(labels, minlength=k)
        return int(np.sum(sizes * (sizes - 1)))  # ordered pairs

    before = connected_pairs(graph)
    keep = np.delete(np.arange(graph.n), bus)
    after = connected_pairs(induced_subgraph(graph, keep))
    # pairs involving the failed bus itself disappear trivially;
    # subtract them so the score isolates collateral disconnection
    labels, _ = connected_components(graph)
    comp_size = int(np.sum(labels == labels[bus]))
    trivial = 2 * (comp_size - 1)
    return before - after - trivial


def main() -> None:
    grid = synthetic_grid()
    print(f"synthetic grid: {grid}")

    result = apgre_bc_detailed(grid)
    scores = result.scores
    print(
        f"decomposition: {result.stats.num_subgraphs} sub-graphs, "
        f"{result.stats.num_removed_pendants} feeder buses eliminated "
        f"as redundant sources"
    )

    ranked = np.argsort(-scores)[:8]
    print("\ncontingency screen (top-BC buses):")
    print(f"{'bus':>5s} {'BC':>12s} {'pairs lost if bus fails':>24s}")
    for bus in ranked.tolist():
        lost = pairs_disconnected(grid, bus)
        print(f"{bus:>5d} {scores[bus]:>12.1f} {lost:>24d}")

    # sanity: the screen should surface the inter-tie gateways —
    # exactly the articulation points APGRE decomposed on
    from repro.decompose import articulation_points

    arts = set(articulation_points(grid).tolist())
    hits = sum(1 for b in ranked.tolist() if int(b) in arts)
    print(
        f"\n{hits}/{ranked.size} of the top-BC buses are articulation "
        f"points of the grid (single points of regional failure)"
    )


if __name__ == "__main__":
    main()
