"""Experiment registry: paper table/figure id → experiment function."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.bench import experiments as _exp
from repro.bench.runner import ExperimentResult
from repro.errors import BenchmarkError

__all__ = ["EXPERIMENTS", "experiment_ids", "get_experiment"]

#: id → zero-argument experiment callable.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": _exp.table1,
    "table2": _exp.table2,
    "table3": _exp.table3,
    "table4": _exp.table4,
    "fig6": _exp.fig6,
    "fig7": _exp.fig7,
    "fig8": _exp.fig8,
    "fig9": _exp.fig9,
    "fig10": _exp.fig10,
    "ablation-threshold": _exp.ablation_threshold,
    "ablation-features": _exp.ablation_features,
    "cache-incremental": _exp.cache_incremental,
}


def experiment_ids() -> List[str]:
    """All known experiment ids, tables first."""
    return list(EXPERIMENTS)


def get_experiment(exp_id: str) -> Callable[[], ExperimentResult]:
    """Look an experiment up by id.

    Raises
    ------
    BenchmarkError
        For unknown ids (message lists the valid ones).
    """
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise BenchmarkError(
            f"unknown experiment {exp_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
