"""Table 2 — execution time of every algorithm on every graph.

One pytest-benchmark entry per (graph, algorithm) pair, matching the
paper's Table-2 cells, plus the assembled table (with the average-
speedup row) as a report. ``async`` runs only on the undirected
graphs — the paper's '-' cells.
"""

import numpy as np
import pytest

from repro.baselines.registry import get_algorithm
from repro.bench.experiments import TABLE_ALGOS, table2
from repro.bench.workloads import bench_graph_names, get_graph

from conftest import one_shot


def _pairs():
    out = []
    for name in bench_graph_names():
        for algo in TABLE_ALGOS:
            out.append((name, algo))
    return out


@pytest.mark.parametrize("name,algo", _pairs())
def test_bc_time(benchmark, name, algo):
    graph = get_graph(name)
    if algo == "async" and graph.directed:
        pytest.skip("async is undirected-only (the paper's '-' cells)")
    fn = get_algorithm(algo)
    scores = one_shot(benchmark, fn, graph)
    assert scores.shape == (graph.n,)
    assert np.all(scores >= -1e-9)
    benchmark.group = name
    benchmark.extra_info["graph"] = name
    benchmark.extra_info["algorithm"] = algo


def test_report_table2(benchmark, report):
    result = one_shot(benchmark, table2)
    assert result.rows[-1][0].startswith("Average")
    report(result)
