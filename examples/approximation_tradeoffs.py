#!/usr/bin/env python
"""Approximation quality vs. cost: sampling pivots against exact APGRE.

The paper's related work surveys approximation algorithms that trade
exactness for speed (§6); its §5.2 compares against GPU sampling rates.
This example quantifies that trade-off end to end on an analogue graph:

1. compute exact BC once (APGRE);
2. sweep the sampling pivot count k;
3. report, per k: wall time, Pearson/Kendall correlation, and the
   top-10% overlap — the metric that matters for "find the critical
   vertices" workloads.

Run:  python examples/approximation_tradeoffs.py [graph-name]
"""

import sys

import numpy as np

from repro import apgre_bc
from repro.baselines import sampling_bc
from repro.bench.report import render_table
from repro.generators import analogue_graph, suite_names
from repro.metrics.comparison import compare_scores
from repro.metrics.timers import stopwatch


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "com-youtube"
    if name not in suite_names():
        print(f"unknown graph {name!r}; choose from: {', '.join(suite_names())}")
        raise SystemExit(2)
    graph = analogue_graph(name, scale=0.75)
    print(f"{name} analogue: {graph}")

    with stopwatch() as t_exact:
        exact = apgre_bc(graph)
    print(f"exact BC via APGRE: {t_exact.seconds:.2f}s\n")

    rows = []
    for frac in (0.02, 0.05, 0.1, 0.2, 0.5):
        k = max(int(graph.n * frac), 1)
        with stopwatch() as t:
            estimate = sampling_bc(graph, k, seed=7)
        cmp = compare_scores(exact, estimate)
        rows.append(
            [
                f"{frac:.0%} (k={k})",
                t.seconds,
                f"{t_exact.seconds / t.seconds:.1f}x",
                cmp.pearson,
                cmp.kendall,
                cmp.top10_overlap,
            ]
        )
    print(
        render_table(
            f"Sampling quality vs cost on {name}",
            ["pivots", "seconds", "vs exact", "pearson", "kendall",
             "top-10% overlap"],
            rows,
            notes="exact reference computed by APGRE; seed fixed for "
            "reproducibility",
        )
    )

    # the usual reading: ~10% pivots already ranks the head correctly
    ten = rows[2]
    print(
        f"\nat 10% pivots the estimate runs {ten[2]} faster and still "
        f"overlaps {float(ten[5]):.0%} of the true top-10% set"
    )


if __name__ == "__main__":
    main()
