"""Articulation points and biconnected components (Hopcroft–Tarjan).

The paper's ``FINDBCC()`` "finds all biconnected components and all
articulation points using Tarjan's algorithm, requiring O(|V|+|E|)
time" (§4, citing Hopcroft & Tarjan, CACM 1973). This implementation
is the standard single-pass DFS with an edge stack, written
*iteratively* (an explicit stack plus a per-vertex adjacency cursor)
so million-edge graphs cannot hit CPython's recursion limit.

Directedness: biconnectivity is an undirected notion; callers pass the
undirected shadow (:func:`repro.graph.ops.to_undirected`) for directed
graphs, exactly as Algorithm 1's ``GETUNDG`` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph

__all__ = [
    "BCCResult",
    "biconnected_components",
    "articulation_points",
    "bridges",
]


@dataclass
class BCCResult:
    """Output of the biconnected-component decomposition.

    Attributes
    ----------
    component_edges:
        One ``(k, 2)`` int array per biconnected component listing its
        undirected edges (each edge exactly once, in DFS discovery
        order). Every edge of the graph belongs to exactly one
        component ("an edge in G is assigned to one sub-graph", §3.1
        property 4).
    component_vertices:
        One int array per component with its distinct vertices.
    articulation_flags:
        Boolean mask over vertices; ``True`` marks articulation points.
    isolated_vertices:
        Vertices with no incident edges (they belong to no component;
        Algorithm 1 collects them into a final leftover sub-graph).
    """

    component_edges: List[np.ndarray]
    component_vertices: List[np.ndarray]
    articulation_flags: np.ndarray
    isolated_vertices: np.ndarray

    @property
    def num_components(self) -> int:
        return len(self.component_edges)

    def articulation_points(self) -> np.ndarray:
        """Sorted array of articulation-point vertex ids."""
        return np.flatnonzero(self.articulation_flags)


def biconnected_components(graph: CSRGraph) -> BCCResult:
    """Decompose an **undirected** graph into biconnected components.

    Raises
    ------
    PartitionError
        If handed a directed graph (convert with ``to_undirected``
        first — implicit conversion here would hide an easy-to-make
        caller bug, since α/β must still be computed on the *directed*
        graph).
    """
    if graph.directed:
        raise PartitionError(
            "biconnected_components requires an undirected graph; "
            "pass to_undirected(graph)"
        )
    n = graph.n
    indptr = graph.out_indptr
    indices = graph.out_indices

    disc = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    is_art = np.zeros(n, dtype=bool)
    cursor = indptr[:-1].copy()  # per-vertex next-neighbour position
    parent_skipped = np.zeros(n, dtype=bool)

    component_edges: List[np.ndarray] = []
    edge_stack: List[tuple] = []
    timer = 0

    for root in range(n):
        if disc[root] >= 0 or indptr[root] == indptr[root + 1]:
            continue
        disc[root] = low[root] = timer
        timer += 1
        root_children = 0
        stack = [root]
        while stack:
            v = stack[-1]
            if cursor[v] < indptr[v + 1]:
                w = int(indices[cursor[v]])
                cursor[v] += 1
                if w == parent[v] and not parent_skipped[v]:
                    # skip the single reverse copy of the tree edge
                    # (graphs are simple; a second occurrence would be
                    # a genuine parallel edge, i.e. a cycle)
                    parent_skipped[v] = True
                elif disc[w] < 0:
                    parent[w] = v
                    disc[w] = low[w] = timer
                    timer += 1
                    edge_stack.append((v, w))
                    stack.append(w)
                    if v == root:
                        root_children += 1
                elif disc[w] < disc[v]:
                    # genuine back edge (the mirror copies with
                    # disc[w] > disc[v] were already handled from w)
                    edge_stack.append((v, w))
                    if disc[w] < low[v]:
                        low[v] = disc[w]
            else:
                stack.pop()
                if not stack:
                    continue
                u = stack[-1]
                if low[v] < low[u]:
                    low[u] = low[v]
                if low[v] >= disc[u]:
                    # u separates v's subtree: pop one biconnected
                    # component ending with the tree edge (u, v)
                    comp: List[tuple] = []
                    while edge_stack:
                        e = edge_stack.pop()
                        comp.append(e)
                        if e == (u, v):
                            break
                    component_edges.append(
                        np.asarray(comp[::-1], dtype=np.int64)
                    )
                    if u != root:
                        is_art[u] = True
        if root_children >= 2:
            is_art[root] = True
        if edge_stack:  # pragma: no cover - defensive invariant
            raise PartitionError("edge stack not drained after DFS root")

    component_vertices = _grouped_component_vertices(component_edges)
    deg = graph.out_degrees()
    isolated = np.flatnonzero(deg == 0)
    return BCCResult(
        component_edges=component_edges,
        component_vertices=component_vertices,
        articulation_flags=is_art,
        isolated_vertices=isolated,
    )


def _grouped_component_vertices(
    component_edges: List[np.ndarray],
) -> List[np.ndarray]:
    """Distinct sorted vertices of every component in one grouped pass.

    Equivalent to ``[np.unique(e.ravel()) for e in component_edges]``
    but with a single lexsort over all endpoints instead of one
    ``np.unique`` per component — the per-component calls dominated
    preprocessing on partitions with many small blocks (bridge-heavy
    graphs produce one block per bridge), and preprocessing now sits on
    the incremental-recompute hot path.
    """
    k = len(component_edges)
    if k == 0:
        return []
    counts = np.asarray(
        [2 * edges.shape[0] for edges in component_edges], dtype=np.int64
    )
    flat = np.concatenate(component_edges, axis=0).ravel()
    comp_of = np.repeat(np.arange(k, dtype=np.int64), counts)
    order = np.lexsort((flat, comp_of))
    comp_sorted = comp_of[order]
    vert_sorted = flat[order]
    keep = np.empty(vert_sorted.size, dtype=bool)
    keep[0] = True
    keep[1:] = (comp_sorted[1:] != comp_sorted[:-1]) | (
        vert_sorted[1:] != vert_sorted[:-1]
    )
    comp_sorted = comp_sorted[keep]
    vert_sorted = vert_sorted[keep]
    bounds = np.searchsorted(comp_sorted, np.arange(k + 1, dtype=np.int64))
    return [
        vert_sorted[bounds[c] : bounds[c + 1]] for c in range(k)
    ]


def articulation_points(graph: CSRGraph) -> np.ndarray:
    """Sorted articulation points of the undirected shadow of ``graph``.

    Convenience wrapper accepting directed input (unlike
    :func:`biconnected_components`, there is no α/β pitfall here).
    """
    from repro.graph.ops import to_undirected

    return biconnected_components(to_undirected(graph)).articulation_points()


def bridges(graph: CSRGraph) -> np.ndarray:
    """Bridge edges of the undirected shadow of ``graph``.

    A bridge is an edge whose removal disconnects its component —
    equivalently, a biconnected component of exactly one edge, so it
    falls out of the decomposition for free. Returns a ``(k, 2)``
    array of endpoint pairs (``u <= v``), sorted.

    Bridges are the edge-level counterpart of articulation points: the
    paper's pendant edges and inter-sub-graph connections are all
    bridges, which is why single-edge blocks dominate the partition
    counts of Table 4.
    """
    from repro.graph.ops import to_undirected

    result = biconnected_components(to_undirected(graph))
    out = [
        np.sort(edges[0])
        for edges in result.component_edges
        if edges.shape[0] == 1
    ]
    if not out:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.stack(out).astype(np.int64)
    order = np.lexsort((arr[:, 1], arr[:, 0]))
    return arr[order]
