"""Weighted APGRE — articulation-guided BC for weighted graphs.

The paper restricts APGRE to unweighted graphs, but nothing in the
decomposition actually depends on unit weights:

* articulation points and the block-cut tree are purely topological;
* "every path between SG_i and the region beyond its articulation
  point a passes through a" holds for weighted shortest paths too, so
  ``σ_st = σ_sa · σ_at`` still factorises;
* ``α``/``β`` count *reachable vertices*, which weights cannot change;
* pendant-source derivation (γ/R) relies only on the pendant having a
  single out-arc — the derived DAG is the anchor's DAG shifted by one
  edge weight, leaving every σ-ratio intact.

The only change is the traversal engine: BFS levels become Dijkstra
settle order (:func:`repro.baselines.weighted.dijkstra_sigma`), and the
backward sweep walks that order vertex-by-vertex instead of level
slabs. Everything else — the four dependencies, the merge rules
including the two v==s corrections — is reused verbatim from the
unweighted math (see docs/ALGORITHM.md §3–4).

This makes the module the "weighted graphs" future-work item of the
paper, solved by composing its decomposition with the standard
Dijkstra-Brandes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.baselines.weighted import dijkstra_sigma
from repro.decompose.alphabeta import compute_alpha_beta
from repro.decompose.partition import (
    DEFAULT_THRESHOLD,
    Partition,
    Subgraph,
    graph_partition,
)
from repro.errors import AlgorithmError, GraphValidationError
from repro.graph.csr import CSRGraph
from repro.parallel.pool import get_worker_state
from repro.parallel.scheduler import lpt_order
from repro.parallel.supervisor import (
    RunHealth,
    SupervisorConfig,
    supervised_map,
)
from repro.types import SCORE_DTYPE

__all__ = ["weighted_apgre_bc", "subgraph_weights"]


def subgraph_weights(
    graph: CSRGraph, sg: Subgraph, weights: np.ndarray
) -> np.ndarray:
    """Map global per-arc weights onto a sub-graph's local arc order.

    Both arc arrays are sorted by (source, target), so the mapping is
    one vectorised binary search over linearised global keys.
    """
    gsrc, gdst = graph.arcs()
    keys = gsrc.astype(np.int64) * graph.n + gdst.astype(np.int64)
    lsrc, ldst = sg.graph.arcs()
    targets = (
        sg.vertices[lsrc].astype(np.int64) * graph.n
        + sg.vertices[ldst].astype(np.int64)
    )
    pos = np.searchsorted(keys, targets)
    if not np.array_equal(keys[pos], targets):  # pragma: no cover
        raise AlgorithmError("sub-graph arc missing from parent graph")
    return weights[pos]


def _weighted_bc_subgraph(
    graph: CSRGraph,
    sg: Subgraph,
    weights: np.ndarray,
    tolerance: float,
) -> np.ndarray:
    """Weighted Algorithm 2 for one sub-graph (local scores)."""
    g = sg.graph
    n = g.n
    undirected = not g.directed
    bc = np.zeros(n, dtype=SCORE_DTYPE)
    if n == 0:
        return bc
    local_w = subgraph_weights(graph, sg, weights)
    alpha = sg.alpha
    beta = sg.beta
    is_art = sg.is_boundary_art
    arts = np.flatnonzero(is_art)

    for s in sg.roots.tolist():
        res = dijkstra_sigma(g, s, local_w, tolerance=tolerance)
        sigma = res.sigma
        # Phase 0: dependency initialisation (α at articulation points)
        d_i2i = np.zeros(n, dtype=SCORE_DTYPE)
        d_i2o = np.zeros(n, dtype=SCORE_DTYPE)
        d_o2o = np.zeros(n, dtype=SCORE_DTYPE)
        d_i2o[arts] = alpha[arts]
        s_is_art = bool(is_art[s])
        size_o2i = float(beta[s]) if s_is_art else 0.0
        if s_is_art:
            d_o2o[arts] = size_o2i * alpha[arts]
            d_o2o[s] = 0.0
        d_i2o[s] = 0.0

        # Phase 2: accumulate in reverse settle order
        for w in reversed(res.order):
            sw = sigma[w]
            for v in res.preds[w]:
                coef = sigma[v] / sw
                d_i2i[v] += coef * (1.0 + d_i2i[w])
                d_i2o[v] += coef * d_i2o[w]
                if s_is_art:
                    d_o2o[v] += coef * d_o2o[w]

        # merge (same rules + corrections as the unweighted kernel)
        g_s = float(sg.gamma[s])
        for v in res.order:
            if v == s:
                continue
            contrib = (1.0 + g_s) * (d_i2i[v] + d_i2o[v])
            if s_is_art:
                contrib += size_o2i * d_i2i[v] + d_o2o[v]
            bc[v] += contrib
        if g_s:
            self_i2i = d_i2i[s] - (1.0 if undirected else 0.0)
            self_i2o = d_i2o[s] + (float(alpha[s]) if s_is_art else 0.0)
            bc[s] += g_s * (self_i2i + self_i2o)
    return bc


def _weighted_subgraph_task(index: int) -> Tuple[int, np.ndarray]:
    """Worker body: one sub-graph's weighted local scores."""
    state = get_worker_state()
    partition: Partition = state["partition"]
    return index, _weighted_bc_subgraph(
        state["graph"],
        partition.subgraphs[index],
        state["weights"],
        state["tolerance"],
    )


def weighted_apgre_bc(
    graph: CSRGraph,
    weights: Optional[np.ndarray] = None,
    *,
    threshold: int = DEFAULT_THRESHOLD,
    tolerance: float = 1e-12,
    partition: Optional[Partition] = None,
    workers: int = 1,
    supervisor: Optional[SupervisorConfig] = None,
    health: Optional[RunHealth] = None,
) -> np.ndarray:
    """Exact BC on a positively weighted graph via APGRE decomposition.

    Parameters
    ----------
    graph:
        Directed or undirected.
    weights:
        Positive weight per stored arc (CSR arc order); ``None`` means
        unit weights (identical results to
        :func:`repro.core.apgre.apgre_bc`).
    threshold:
        Algorithm-1 merge threshold.
    tolerance:
        Floating tie tolerance for equal-length paths.
    partition:
        Optional pre-computed partition (with α/β filled) to reuse.
    workers:
        ``> 1`` dispatches sub-graphs (largest first) over the
        supervised process pool
        (:func:`repro.parallel.supervisor.supervised_map`); ``1``
        keeps the serial loop.
    supervisor:
        Fault-tolerance policy for the pooled path (timeouts, retry,
        fallback); defaults to ``SupervisorConfig()``.
    health:
        Optional :class:`~repro.parallel.supervisor.RunHealth` to
        collect the supervision report into.
    """
    m = graph.num_arcs
    if weights is None:
        weights = np.ones(m, dtype=SCORE_DTYPE)
    else:
        weights = np.asarray(weights, dtype=SCORE_DTYPE)
        if weights.shape != (m,):
            raise GraphValidationError(
                f"weights must have one entry per arc ({m}), "
                f"got shape {weights.shape}"
            )
        if (weights <= 0).any():
            raise AlgorithmError(
                "weighted APGRE requires strictly positive weights"
            )
    if partition is None:
        partition = graph_partition(graph, threshold=threshold)
        compute_alpha_beta(graph, partition)
    bc = np.zeros(graph.n, dtype=SCORE_DTYPE)
    if workers > 1 and len(partition.subgraphs) > 1:
        order = lpt_order([sg.num_arcs for sg in partition.subgraphs])
        results = supervised_map(
            _weighted_subgraph_task,
            order,
            workers=workers,
            state={
                "graph": graph,
                "partition": partition,
                "weights": weights,
                "tolerance": tolerance,
            },
            config=supervisor,
            health=health,
        )
        for index, local in results:
            bc[partition.subgraphs[index].vertices] += local
        return bc
    for sg in partition.subgraphs:
        bc[sg.vertices] += _weighted_bc_subgraph(
            graph, sg, weights, tolerance
        )
    return bc
