"""Tests for the exception hierarchy and package surface."""

import pytest

import repro
from repro.errors import (
    AlgorithmError,
    BenchmarkError,
    GraphFormatError,
    GraphValidationError,
    PartitionError,
    ReproError,
)


def test_hierarchy():
    for exc in (
        GraphFormatError,
        GraphValidationError,
        PartitionError,
        AlgorithmError,
        BenchmarkError,
    ):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)


def test_catchable_as_repro_error():
    with pytest.raises(ReproError):
        raise GraphFormatError("boom")


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_from_docstring():
    from repro import apgre_bc, from_edges

    g = from_edges([(0, 1), (1, 2), (2, 3), (1, 3)], directed=False)
    scores = apgre_bc(g)
    assert scores.shape == (4,)
    assert scores[1] > 0


def test_run_selftest_api():
    from repro.selftest import run_selftest

    report = run_selftest()
    assert len(report.checks) >= 6
    assert "self-test" in str(report)
