"""Tests for pendant-tree contraction BC (repro.core.treefold)."""

import numpy as np
import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import brandes_bc
from repro.core.treefold import FoldResult, peel_pendant_trees, treefold_bc
from repro.errors import AlgorithmError
from repro.generators import (
    barbell_graph,
    caterpillar_graph,
    cycle_graph,
    star_graph,
)
from repro.graph.build import from_edges, from_networkx


def assert_exact(g, name=""):
    np.testing.assert_allclose(
        treefold_bc(g), brandes_bc(g), rtol=1e-9, atol=1e-8, err_msg=name
    )


class TestPeeling:
    def test_star_peels_leaves(self):
        fold = peel_pendant_trees(star_graph(5))
        assert sorted(fold.peel_order) == [1, 2, 3, 4, 5]
        assert fold.weight[0] == 6
        assert fold.core_mask.tolist() == [True] + [False] * 5

    def test_cycle_peels_nothing(self):
        fold = peel_pendant_trees(cycle_graph(6))
        assert fold.peel_order == []
        assert fold.core_mask.all()
        assert (fold.weight == 1).all()

    def test_chain_folds_transitively(self):
        # 0-1-2 hanging off triangle 2-3-4
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 2)])
        fold = peel_pendant_trees(g)
        assert sorted(fold.peel_order) == [0, 1]
        assert fold.weight[2] == 3
        assert fold.anchor_of(0) == 2
        assert fold.anchor_of(1) == 2
        assert fold.children[1] == [0]

    def test_pure_tree_collapses_to_one_vertex(self):
        nxg = nx.random_labeled_tree(15, seed=3)
        fold = peel_pendant_trees(from_networkx(nxg, n=15))
        assert int(fold.core_mask.sum()) == 1
        survivor = int(np.flatnonzero(fold.core_mask)[0])
        assert fold.weight[survivor] == 15

    def test_two_vertex_component(self):
        g = from_edges([(0, 1)], n=3)
        fold = peel_pendant_trees(g)
        assert int(fold.core_mask[:2].sum()) == 1
        assert fold.core_mask[2]  # isolated vertex survives
        assert fold.weight[[0, 1]].sum() == 3  # 2 + 1 (one side folded)

    def test_rejects_directed(self):
        g = from_edges([(0, 1)], directed=True)
        with pytest.raises(AlgorithmError, match="undirected"):
            peel_pendant_trees(g)


class TestExactness:
    def test_zoo_undirected(self, zoo_entry):
        name, g, _nxg = zoo_entry
        if g.directed:
            with pytest.raises(AlgorithmError):
                treefold_bc(g)
            return
        assert_exact(g, name)

    def test_structured_families(self):
        assert_exact(star_graph(7), "star")
        assert_exact(caterpillar_graph(6, 2), "caterpillar")
        assert_exact(barbell_graph(4, 4), "barbell")
        assert_exact(from_edges([(i, i + 1) for i in range(10)]), "path")

    @pytest.mark.parametrize("seed", range(6))
    def test_random_with_pendant_trees(self, seed):
        rng = np.random.default_rng(seed)
        nxg = nx.gnm_random_graph(24, 30, seed=seed)
        nid = 24
        for _ in range(5):
            anchor = int(rng.integers(0, 24))
            for _hop in range(int(rng.integers(1, 4))):
                nxg.add_edge(anchor, nid)
                anchor = nid
                nid += 1
        assert_exact(from_networkx(nxg, n=nid), f"seed-{seed}")

    def test_pure_trees(self):
        for seed in range(4):
            nxg = nx.random_labeled_tree(18, seed=seed)
            assert_exact(from_networkx(nxg, n=18), f"tree-{seed}")

    def test_disconnected_mixed(self):
        nxg = nx.disjoint_union(
            nx.random_labeled_tree(9, seed=1), nx.cycle_graph(6)
        )
        nxg.add_nodes_from([15, 16])
        nxg.add_edge(17, 18)
        assert_exact(from_networkx(nxg, n=19), "mixed")

    def test_empty_and_tiny(self):
        assert treefold_bc(from_edges([], n=0)).size == 0
        assert treefold_bc(from_edges([], n=3)).tolist() == [0, 0, 0]
        assert treefold_bc(from_edges([(0, 1)])).tolist() == [0, 0]


@st.composite
def pendant_heavy_graphs(draw):
    """Random undirected cores with attached random pendant trees."""
    n_core = draw(st.integers(min_value=1, max_value=18))
    max_m = min(2 * n_core, n_core * (n_core - 1) // 2)
    m = draw(st.integers(min_value=0, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=5000))
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.integers(0, n_core, size=2)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    edge_list = sorted((int(u), int(v)) for u, v in edges)
    nid = n_core
    for _ in range(draw(st.integers(min_value=0, max_value=10))):
        anchor = int(rng.integers(0, nid))
        edge_list.append((anchor, nid))
        nid += 1
    return from_edges(edge_list, n=nid)


@given(pendant_heavy_graphs())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_treefold_equals_brandes_property(g):
    np.testing.assert_allclose(
        treefold_bc(g), brandes_bc(g), rtol=1e-8, atol=1e-8
    )


class TestWorkSavings:
    def test_counter_smaller_than_brandes(self):
        from repro.baselines.common import WorkCounter

        g = caterpillar_graph(8, 4)
        tf = WorkCounter()
        treefold_bc(g, counter=tf)
        br = WorkCounter()
        brandes_bc(g, counter=br)
        # the caterpillar is almost all tree: contraction should slash
        # traversal work by a large factor
        assert tf.edges * 4 < br.edges

    def test_registered_with_dash_semantics(self):
        from repro.baselines import get_algorithm

        fn = get_algorithm("treefold")
        g = from_edges([(0, 1), (1, 2), (2, 0), (0, 3)])
        np.testing.assert_allclose(fn(g), brandes_bc(g), rtol=1e-9)
        gd = from_edges([(0, 1)], directed=True)
        with pytest.raises(AlgorithmError):
            fn(gd)
