"""Comparing BC score vectors (exact vs exact, exact vs approximate).

The approximation algorithms (sampling, adaptive) are judged by how
well they *rank* vertices, not by absolute error — the downstream uses
the paper cites (community detection, contingency screening, key-actor
identification) consume the top of the ranking. This module gathers
the comparison measures the tests and benchmark reports use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BenchmarkError

__all__ = ["ScoreComparison", "compare_scores", "top_k_overlap", "kendall_tau"]


@dataclass
class ScoreComparison:
    """Summary of how two score vectors relate."""

    max_abs_diff: float
    max_rel_diff: float  # relative to the reference, eps-guarded
    pearson: float
    kendall: float
    top10_overlap: float  # Jaccard of the top-10% vertex sets

    @property
    def exact_match(self) -> bool:
        """Within float64 round-off of the reference."""
        return self.max_abs_diff < 1e-6


def top_k_overlap(a: np.ndarray, b: np.ndarray, k: int) -> float:
    """Jaccard overlap of the two top-``k`` vertex sets."""
    if k <= 0:
        raise BenchmarkError(f"k must be positive, got {k}")
    k = min(k, a.size)
    if k == 0:
        return 1.0
    top_a = set(np.argsort(-a, kind="stable")[:k].tolist())
    top_b = set(np.argsort(-b, kind="stable")[:k].tolist())
    union = top_a | top_b
    return len(top_a & top_b) / len(union) if union else 1.0


def kendall_tau(a: np.ndarray, b: np.ndarray) -> float:
    """Kendall rank correlation (tau-a, ties counted as agreements).

    O(n²) pair enumeration — fine for the few-thousand-vertex graphs
    this package works with; scipy's O(n log n) version is used when
    available.
    """
    if a.size != b.size:
        raise BenchmarkError("score vectors must have equal length")
    n = a.size
    if n < 2:
        return 1.0
    try:
        from scipy.stats import kendalltau

        tau = kendalltau(a, b).statistic
        return float(tau) if np.isfinite(tau) else 1.0
    except ImportError:  # pragma: no cover - scipy present in CI
        concordant = 0
        total = 0
        for i in range(n):
            da = a[i] - a[i + 1 :]
            db = b[i] - b[i + 1 :]
            prod = da * db
            concordant += int((prod > 0).sum()) + int(
                ((da == 0) & (db == 0)).sum()
            )
            total += prod.size
        return 2.0 * concordant / total - 1.0


def compare_scores(
    reference: np.ndarray, candidate: np.ndarray
) -> ScoreComparison:
    """Full comparison of ``candidate`` against ``reference``."""
    if reference.shape != candidate.shape:
        raise BenchmarkError(
            f"shape mismatch: {reference.shape} vs {candidate.shape}"
        )
    if reference.size == 0:
        return ScoreComparison(0.0, 0.0, 1.0, 1.0, 1.0)
    diff = np.abs(candidate - reference)
    denom = np.maximum(np.abs(reference), 1e-12)
    if reference.size < 2 or np.allclose(reference, reference[0]):
        pearson = 1.0 if np.allclose(candidate, candidate[0]) else 0.0
    else:
        pearson = float(np.corrcoef(reference, candidate)[0, 1])
    k = max(reference.size // 10, 1)
    return ScoreComparison(
        max_abs_diff=float(diff.max()),
        max_rel_diff=float((diff / denom).max()),
        pearson=pearson,
        kendall=kendall_tau(reference, candidate),
        top10_overlap=top_k_overlap(reference, candidate, k),
    )
