#!/usr/bin/env python
"""Head-to-head of every BC algorithm in the package on one graph.

A miniature of the paper's Table 2/3: run all seven exact algorithms
(plus sampling) on an analogue graph, verify they agree, and print the
time/MTEPS table. Choose the graph and scale via CLI args.

Run:  python examples/compare_algorithms.py [graph-name] [scale]
e.g.  python examples/compare_algorithms.py WikiTalk 0.5
"""

import sys

import numpy as np

from repro.baselines import sampling_bc
from repro.baselines.registry import ALGORITHMS
from repro.bench.report import render_table
from repro.errors import AlgorithmError
from repro.generators import analogue_graph, suite_names
from repro.metrics.teps import graph_mteps
from repro.metrics.timers import stopwatch


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Email-Enron"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    if name not in suite_names():
        print(f"unknown graph {name!r}; choose from: {', '.join(suite_names())}")
        raise SystemExit(2)
    graph = analogue_graph(name, scale=scale)
    print(f"{name} analogue at scale {scale}: {graph}\n")

    rows = []
    reference = None
    for algo, fn in ALGORITHMS.items():
        try:
            with stopwatch() as t:
                scores = fn(graph)
        except AlgorithmError as exc:
            rows.append([algo, None, None, f"skipped: {exc}"])
            continue
        if reference is None:
            reference = scores
        agrees = bool(np.allclose(scores, reference, atol=1e-6))
        rows.append(
            [algo, t.seconds, graph_mteps(graph, t.seconds),
             "exact" if agrees else "MISMATCH"]
        )
    with stopwatch() as t:
        est = sampling_bc(graph, k=max(graph.n // 10, 1), seed=1)
    corr = float(np.corrcoef(est, reference)[0, 1])
    rows.append(
        [f"sampling (k=n/10)", t.seconds, graph_mteps(graph, t.seconds),
         f"approx, corr={corr:.3f}"]
    )

    print(
        render_table(
            f"All algorithms on {name}",
            ["algorithm", "seconds", "MTEPS", "result"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
