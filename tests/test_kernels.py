"""Tests for the compute-kernel registry and the push/pull kernel.

Covers the PR's contract surface: every registered kernel matches
Brandes to 1e-9 across the serial/threads/processes engines with exact
(and deterministic) examined-edge tallies, the split tally identity
``edges_traversed + edges_pulled == examined`` holds on every
composition (plain, compressed, sharded, cached-replay,
journaled-resume), ``auto`` selection never returns an unavailable
kernel and honours the structural thresholds, the pull kernel's RAM
model shrinks ``auto`` batch sizes, injected worker kills mid-pull
never commit a partial delta, and an absent numba degrades to a clean
miss instead of an error.
"""

import dataclasses
import warnings

import numpy as np
import pytest

import networkx as nx

from repro.baselines.brandes import brandes_bc, brandes_python_bc
from repro.baselines.common import WorkCounter, run_per_source
from repro.core.apgre import apgre_bc, apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.errors import AlgorithmError
from repro.graph.batched import auto_batch_size, bfs_sigma_batched
from repro.graph.build import from_networkx
from repro.graph.kernels import (
    AUTO_MIN_VERTICES,
    AUTO_PULL_MIN_BATCH,
    KERNEL_ENV_VAR,
    _FEATURE_CACHE,
    _REGISTRY,
    KernelFeatures,
    default_kernel_name,
    get_kernel,
    kernel_features,
    kernel_names,
    kernel_report,
    register_kernel,
    resolve_kernel_name,
    select_kernel,
)
from repro.graph.kernels import nogil as _nogil
from repro.graph.kernels.pull import (
    PULL_ALPHA,
    bfs_sigma_batched_pull,
)
from repro.parallel.faults import FaultSpec, injected_faults
from repro.parallel.supervisor import RunHealth
from repro.parallel.threaded import threaded_bc_scores

WORKERS = 2

#: every kernel the host can actually run (numba joins on CI's kernels
#: job); "auto" rides along as the selection path
AVAILABLE = [k for k in kernel_names() if get_kernel(k).available()]
BACKENDS = ["serial", "threads", "processes"]


@pytest.fixture(scope="module")
def dense():
    """Dense small-diameter graph in the pull kernel's regime.

    avg degree ~10.7, two-sweep diameter ~3, fully reachable — the
    shape where ``auto`` selects ``pull`` and bottom-up levels fire.
    """
    return from_networkx(nx.gnm_random_graph(300, 1600, seed=3), n=300)


@pytest.fixture(scope="module")
def dense_oracle(dense):
    return brandes_bc(dense)


def triple(graph, *, kernel, backend=None, workers=1, batch=8):
    """Scores plus the (edges, pulled, switches) split for one run."""
    counter = WorkCounter()
    scores = run_per_source(
        graph,
        mode="arcs",
        batch_size=batch,
        workers=workers,
        backend=backend,
        kernel=kernel,
        counter=counter,
    )
    return scores, (counter.edges, counter.pulled, counter.switches)


class TestKernelRegistry:
    def test_registered_names(self):
        assert kernel_names() == ("arcs", "spmm", "pull", "numba")
        for name in kernel_names():
            assert isinstance(get_kernel(name).available(), bool)
        assert get_kernel("arcs").available()
        assert get_kernel("pull").available()

    def test_unknown_kernel_raises(self):
        with pytest.raises(AlgorithmError, match="unknown compute kernel"):
            get_kernel("simd")
        with pytest.raises(AlgorithmError, match="unknown compute kernel"):
            resolve_kernel_name("simd")

    def test_default_matches_spmm_probe(self):
        expected = "spmm" if get_kernel("spmm").available() else "arcs"
        assert default_kernel_name() == expected
        assert select_kernel(None) == expected

    def test_env_override(self, monkeypatch, dense):
        monkeypatch.setenv(KERNEL_ENV_VAR, "arcs")
        assert resolve_kernel_name(None, graph=dense) == "arcs"
        monkeypatch.setenv(KERNEL_ENV_VAR, "nope")
        with pytest.raises(AlgorithmError):
            resolve_kernel_name(None)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "arcs")
        assert resolve_kernel_name("pull") == "pull"

    def test_unavailable_kernel_degrades_with_warning(self):
        ghost = dataclasses.replace(
            get_kernel("pull"), name="ghost", probe=lambda: False,
            unavailable_reason="probe says no",
        )
        register_kernel(ghost)
        try:
            with pytest.warns(RuntimeWarning, match="probe says no"):
                resolved = resolve_kernel_name("ghost")
            assert resolved == default_kernel_name()
        finally:
            del _REGISTRY["ghost"]

    def test_auto_never_selects_unavailable(self, dense):
        real = get_kernel("pull")
        assert select_kernel(dense) == "pull"  # the regime fixture fits
        register_kernel(dataclasses.replace(real, probe=lambda: False))
        try:
            assert select_kernel(dense) == default_kernel_name()
        finally:
            register_kernel(real)

    def test_kernel_report_shape(self):
        report = kernel_report()
        assert set(report) == set(kernel_names())
        assert sum(1 for row in report.values() if row["default"]) == 1
        for row in report.values():
            assert set(row) == {
                "available", "default", "description", "reason"
            }
            if row["available"]:
                assert row["reason"] is None
            else:
                assert row["reason"]


class TestAutoSelection:
    def test_dense_regime_selects_pull(self, dense):
        feats = kernel_features(dense)
        assert feats.avg_degree >= 10
        assert 0 < feats.est_diameter <= 8
        assert feats.reached == 1.0
        assert select_kernel(dense) == "pull"
        assert select_kernel(dense, batch=64) == "pull"

    def test_thin_batch_stays_on_default(self, dense):
        assert (
            select_kernel(dense, batch=AUTO_PULL_MIN_BATCH - 1)
            == default_kernel_name()
        )

    def test_small_or_sparse_graphs_stay_on_default(self, und_random):
        # 36 vertices: under the minimum, and sparse besides
        assert und_random.n < AUTO_MIN_VERTICES
        assert select_kernel(und_random) == default_kernel_name()

    def test_deep_graph_stays_on_default(self):
        graph = from_networkx(nx.path_graph(400), n=400)
        assert kernel_features(graph).est_diameter > 8
        assert select_kernel(graph) == default_kernel_name()

    def test_low_reachability_stays_on_default(self, dense):
        # seed the feature cache with a partially-reachable profile:
        # the guard, not the measurement, is under test here
        feats = kernel_features(dense)
        try:
            _FEATURE_CACHE[dense] = dataclasses.replace(
                feats, reached=0.3
            )
            assert select_kernel(dense) == default_kernel_name()
        finally:
            _FEATURE_CACHE[dense] = feats

    def test_features_cached_per_graph(self, dense):
        assert kernel_features(dense) is kernel_features(dense)

    def test_empty_graph_features(self):
        graph = from_networkx(nx.empty_graph(0), n=0)
        assert kernel_features(graph) == KernelFeatures(0, 0, 0.0, 0, 0.0)


class TestKernelEquivalence:
    """Every kernel × engine matches Brandes with exact tallies."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", AVAILABLE + ["auto"])
    def test_matches_brandes_everywhere(
        self, dense, dense_oracle, kernel, backend
    ):
        scores, split = triple(
            dense, kernel=kernel, backend=backend, workers=WORKERS
        )
        np.testing.assert_allclose(
            scores, dense_oracle, rtol=1e-9, atol=1e-9
        )
        # the split is deterministic: engines must commit exactly the
        # serial run's tallies, per direction
        _, serial_split = triple(dense, kernel=kernel)
        assert split == serial_split

    @pytest.mark.parametrize("kernel", AVAILABLE)
    def test_tally_identity(self, dense, kernel):
        counter = WorkCounter()
        run_per_source(
            dense, mode="arcs", batch_size=8, kernel=kernel,
            counter=counter,
        )
        assert counter.examined == counter.edges + counter.pulled
        if kernel == "pull":
            assert counter.pulled > 0
            assert counter.switches > 0
        else:
            assert counter.pulled == 0
            assert counter.switches == 0

    def test_pull_examines_fewer_arcs(self, dense):
        _, (arcs_edges, _, _) = triple(dense, kernel="arcs")
        counter = WorkCounter()
        run_per_source(
            dense, mode="arcs", batch_size=8, kernel="pull",
            counter=counter,
        )
        assert counter.examined < arcs_edges

    def test_directed_graph(self, dir_random, und_random):
        for graph in (dir_random, und_random):
            ref = brandes_bc(graph)
            for kernel in AVAILABLE:
                scores, _ = triple(graph, kernel=kernel, batch=6)
                np.testing.assert_allclose(
                    scores, ref, rtol=1e-9, atol=1e-9
                )

    def test_kernel_implies_auto_batch(self, dense, dense_oracle):
        # kernel= without batch_size must still route through the
        # batched path (otherwise the option would silently no-op)
        counter = WorkCounter()
        scores = run_per_source(
            dense, mode="arcs", kernel="pull", counter=counter
        )
        np.testing.assert_allclose(
            scores, dense_oracle, rtol=1e-9, atol=1e-9
        )
        assert counter.pulled > 0


class TestPullForwardSweep:
    """The pull BFS is exact against the top-down kernel, not just BC."""

    def test_dist_sigma_and_arcs_match_topdown(self, dense):
        sources = [0, 5, 17, 100]
        top = bfs_sigma_batched(dense, sources, keep_level_arcs=True)
        pull = bfs_sigma_batched_pull(
            dense, sources, keep_level_arcs=True
        )
        np.testing.assert_array_equal(pull.dist, top.dist)
        np.testing.assert_array_equal(pull.sigma, top.sigma)
        assert len(pull.level_arcs) == len(top.level_arcs)
        for (ps, pd), (ts, td) in zip(pull.level_arcs, top.level_arcs):
            # same DAG arc set per level, grouped by tail either way
            assert set(zip(ps.tolist(), pd.tolist())) == set(
                zip(ts.tolist(), td.tolist())
            )
            assert np.all(np.diff(ps) >= 0)

    def test_split_tally_accounts_every_probe(self, dense):
        res = bfs_sigma_batched_pull(dense, [0, 5, 17, 100])
        assert res.edges_pulled > 0
        assert res.direction_switches > 0
        top = bfs_sigma_batched(dense, [0, 5, 17, 100])
        # bottom-up levels are why the totals differ — and both count
        # every arc actually probed
        assert (
            res.edges_traversed + res.edges_pulled <= top.edges_traversed
        )

    def test_alpha_zero_always_pulls_exactly(self, dense):
        top = bfs_sigma_batched(dense, [3, 9])
        res = bfs_sigma_batched_pull(dense, [3, 9], alpha=0.0)
        np.testing.assert_array_equal(res.dist, top.dist)
        np.testing.assert_array_equal(res.sigma, top.sigma)
        assert 0.0 < PULL_ALPHA < 1.0  # documented crossover regime

    def test_empty_sources_raise(self, dense):
        with pytest.raises(AlgorithmError):
            bfs_sigma_batched_pull(dense, [])


class TestApgreKernelCompositions:
    """kernel= through the APGRE driver and every composing layer."""

    @pytest.fixture(scope="class")
    def graph(self):
        # dense biconnected core plus pendant/bridge structure, so the
        # decomposition produces real sub-graphs and pull still fires
        nxg = nx.gnm_random_graph(60, 420, seed=11)
        base = 60
        for i in range(8):
            nxg.add_edge(i, base + i)  # pendants
        nxg.add_edges_from(
            [(base + 8, 0), (base + 8, base + 9), (base + 9, 1)]
        )
        return from_networkx(nxg, n=base + 10)

    @pytest.fixture(scope="class")
    def oracle(self, graph):
        return brandes_python_bc(graph)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", ["pull", "auto"])
    def test_plain(self, graph, oracle, backend, kernel):
        res = apgre_bc_detailed(
            graph,
            APGREConfig(backend=backend, workers=WORKERS, kernel=kernel),
        )
        np.testing.assert_allclose(
            res.scores, oracle, rtol=1e-9, atol=1e-9
        )
        assert res.health is not None and not res.health.degraded

    def test_pull_tallies_surface_in_stats(self, graph):
        res = apgre_bc_detailed(graph, APGREConfig(kernel="pull"))
        assert res.stats.edges_pulled > 0
        assert res.stats.kernel_switches > 0
        base = apgre_bc_detailed(graph, APGREConfig(batch_size="auto"))
        assert base.stats.edges_pulled == 0
        assert (
            res.stats.edges_traversed + res.stats.edges_pulled
            < base.stats.edges_traversed + 1
        )

    def test_compressed(self, graph, oracle):
        res = apgre_bc_detailed(
            graph, APGREConfig(kernel="pull", compress=True)
        )
        np.testing.assert_allclose(
            res.scores, oracle, rtol=1e-9, atol=1e-9
        )

    def test_sharded(self, graph, oracle):
        res = apgre_bc_detailed(
            graph,
            APGREConfig(kernel="pull", shard=True, shard_max_size=24),
        )
        np.testing.assert_allclose(
            res.scores, oracle, rtol=1e-9, atol=1e-9
        )
        assert res.stats.shards_created > 0

    def test_cached_then_replayed(self, graph, oracle, tmp_path):
        cfg = APGREConfig(kernel="pull", cache_dir=str(tmp_path / "c"))
        cold = apgre_bc_detailed(graph, cfg)
        np.testing.assert_allclose(
            cold.scores, oracle, rtol=1e-9, atol=1e-9
        )
        assert cold.stats.edges_pulled > 0
        warm = apgre_bc_detailed(graph, cfg)
        np.testing.assert_allclose(
            warm.scores, oracle, rtol=1e-9, atol=1e-9
        )
        assert warm.stats.subgraphs_recomputed == 0
        # committed tallies are direction-blind totals: a replay
        # reports the work the first run actually did, both directions
        assert warm.stats.edges_replayed == (
            cold.stats.edges_traversed + cold.stats.edges_pulled
        )

    def test_journaled_and_resumed(self, graph, oracle, tmp_path):
        jdir = str(tmp_path / "j")
        first = apgre_bc_detailed(
            graph, APGREConfig(kernel="pull", journal_dir=jdir)
        )
        np.testing.assert_allclose(
            first.scores, oracle, rtol=1e-9, atol=1e-9
        )
        resumed = apgre_bc_detailed(
            graph,
            APGREConfig(kernel="pull", journal_dir=jdir, resume=True),
        )
        np.testing.assert_allclose(
            resumed.scores, oracle, rtol=1e-9, atol=1e-9
        )
        assert resumed.stats.subgraphs_recomputed == 0
        assert resumed.stats.subgraphs_resumed > 0

    def test_config_validates_kernel(self):
        assert APGREConfig(kernel="pull").batch_size == "auto"
        assert APGREConfig(kernel="auto", batch_size=16).batch_size == 16
        with pytest.raises(AlgorithmError):
            APGREConfig(kernel="simd")

    def test_apgre_bc_wrapper_accepts_kernel(self, graph, oracle):
        np.testing.assert_allclose(
            apgre_bc(graph, kernel="pull"), oracle, rtol=1e-9, atol=1e-9
        )


class TestPullUnderFaults:
    """A killed worker mid-pull-batch never commits a partial delta."""

    @pytest.fixture(scope="class")
    def reference(self, request):
        dense = request.getfixturevalue("dense")
        counter = WorkCounter()
        scores = threaded_bc_scores(
            dense, list(range(0, dense.n, 3)), batch=8, workers=1,
            kernel="pull", counter=counter,
        )
        return scores, (counter.edges, counter.pulled, counter.switches)

    def _run(self, dense, **kwargs):
        counter = WorkCounter()
        health = RunHealth()
        scores = threaded_bc_scores(
            dense, list(range(0, dense.n, 3)), batch=8, workers=WORKERS,
            kernel="pull", counter=counter, health=health, **kwargs,
        )
        return scores, (counter.edges, counter.pulled,
                        counter.switches), health

    def test_kill_mid_batch_retries_without_partial_commit(
        self, dense, reference
    ):
        ref_scores, ref_split = reference
        with injected_faults(FaultSpec("kill", task=1)):
            scores, split, health = self._run(dense)
        np.testing.assert_allclose(
            scores, ref_scores, rtol=1e-9, atol=1e-9
        )
        assert split == ref_split  # idempotent per-batch tally commit
        assert health.worker_crashes == 1
        assert health.retries >= 1

    def test_persistent_fault_drains_serially_exact(
        self, dense, reference
    ):
        ref_scores, ref_split = reference
        with injected_faults(
            FaultSpec("raise", task=0, attempts=tuple(range(16)))
        ):
            scores, split, health = self._run(dense)
        np.testing.assert_allclose(
            scores, ref_scores, rtol=1e-9, atol=1e-9
        )
        assert split == ref_split
        assert health.serial_retries >= 1


class TestAutoBatchSizePull:
    def test_pull_model_shrinks_batches(self):
        n, m = 200_000, 3_000_000
        budget = 8 << 30
        base = auto_batch_size(n, m, available_bytes=budget)
        pull = auto_batch_size(n, m, available_bytes=budget, kernel="pull")
        assert pull < base

    def test_pull_model_exact_regression(self):
        # the documented model, spelled out: transpose CSR charged once
        # before the worker split, 12 extra bytes per row-vertex
        n, m, workers = 100_000, 1_000_000, 4
        budget = 256 << 20
        csr = 16 * n + 16 * m
        quarter = budget // 4
        per_row = 44 * n + 20 * m + 12 * n
        expected = max(1, ((quarter - csr) // workers) // per_row)
        assert (
            auto_batch_size(
                n, m, available_bytes=budget, workers=workers,
                kernel="pull",
            )
            == expected
        )

    def test_other_kernels_use_base_model(self):
        n, m = 50_000, 400_000
        budget = 128 << 20
        base = auto_batch_size(n, m, available_bytes=budget)
        for kernel in (None, "arcs", "spmm", "numba"):
            assert (
                auto_batch_size(
                    n, m, available_bytes=budget, kernel=kernel
                )
                == base
            )


class TestNumbaKernel:
    def test_probe_is_a_clean_miss_or_a_real_kernel(self):
        kernel = get_kernel("numba")
        if not kernel.available():
            assert "numba" in kernel.unavailable_reason
            assert _nogil.numba_available() is False
            assert _nogil.numba_unavailable_reason()
        else:  # pragma: no cover - exercised on CI's kernels job
            assert _nogil.numba_available() is True

    def test_unavailable_numba_degrades_not_raises(self, dense):
        if get_kernel("numba").available():
            pytest.skip("numba present: degradation path not reachable")
        with pytest.warns(RuntimeWarning, match="numba"):
            name = resolve_kernel_name("numba")
        assert name == default_kernel_name()
        # and requesting it end-to-end still computes correct scores
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            scores = run_per_source(
                dense, mode="arcs", batch_size=8, kernel="numba"
            )
        np.testing.assert_allclose(
            scores, brandes_bc(dense), rtol=1e-9, atol=1e-9
        )

    @pytest.mark.skipif(
        not _nogil.numba_available(), reason="numba not installed"
    )
    def test_numba_matches_brandes(self, dense, dense_oracle):
        # pragma: no cover - exercised on CI's kernels job
        scores, split = triple(dense, kernel="numba")
        np.testing.assert_allclose(
            scores, dense_oracle, rtol=1e-9, atol=1e-9
        )
        assert split[0] > 0 and split[1] == 0
