"""Tests for the measurement layer (TEPS, redundancy, breakdown, stats)."""

import time

import numpy as np
import pytest

from repro.errors import BenchmarkError
from repro.decompose.partition import graph_partition
from repro.generators.structured import (
    caterpillar_graph,
    cycle_graph,
    paper_example_graph,
    star_graph,
)
from repro.generators.suite import analogue_graph
from repro.graph.build import from_edges
from repro.metrics.breakdown import phase_breakdown
from repro.metrics.redundancy import bfs_arc_work, measure_redundancy
from repro.metrics.stats import graph_stats, partition_stats
from repro.metrics.teps import graph_mteps, graph_teps, mteps, teps
from repro.metrics.timers import Timer, stopwatch


class TestTeps:
    def test_formula(self):
        assert teps(100, 1000, 2.0) == 50_000
        assert mteps(100, 1000, 0.1) == 1.0

    def test_graph_helpers(self):
        g = from_edges([(0, 1), (1, 2)])
        # n=3, arcs=4
        assert graph_teps(g, 1.0) == 12
        assert graph_mteps(g, 1.0) == 12 / 1e6

    def test_nonpositive_time(self):
        with pytest.raises(BenchmarkError, match="positive"):
            teps(1, 1, 0.0)


class TestArcWork:
    def test_path_work(self):
        # directed path 0->1->2: BFS from 0 examines 2 arcs
        g = from_edges([(0, 1), (1, 2)], directed=True)
        assert bfs_arc_work(g, 0) == 2
        assert bfs_arc_work(g, 2) == 0

    def test_undirected_counts_both_orientations(self):
        g = from_edges([(0, 1)])
        assert bfs_arc_work(g, 0) == 2  # 0->1 and 1->0 examined


class TestRedundancy:
    def test_fractions_sum_to_one(self):
        for name in ("Email-Enron", "USA-roadNY", "Email-EuAll"):
            rb = measure_redundancy(analogue_graph(name, scale=0.3), name=name)
            total = (
                rb.partial_fraction + rb.total_fraction + rb.essential_fraction
            )
            assert abs(total - 1.0) < 1e-12
            assert rb.partial_fraction >= 0
            assert rb.total_fraction >= 0

    def test_biconnected_graph_no_redundancy(self):
        # a cycle has no articulation points and no pendants: nothing
        # to eliminate
        rb = measure_redundancy(cycle_graph(10))
        assert rb.total_fraction == 0.0
        assert rb.partial_fraction == 0.0
        assert rb.essential_fraction == 1.0

    def test_star_total_redundancy(self):
        # star with k leaves: Brandes runs k+1 sources; APGRE runs only
        # the hub (possibly split across sub-graphs). Each leaf BFS
        # costs the same arcs as the hub BFS (2k arcs each, undirected)
        k = 6
        rb = measure_redundancy(star_graph(k))
        assert rb.w_brandes == (k + 1) * 2 * k
        # every leaf source eliminated
        assert rb.w_after_total == 2 * k
        assert rb.total_fraction == pytest.approx(k / (k + 1))

    def test_caterpillar_mostly_total(self):
        rb = measure_redundancy(caterpillar_graph(5, 3))
        assert rb.total_fraction > 0.5

    def test_pendant_heavy_directed_matches_paper_shape(self):
        # Email-EuAll: the paper reports 71% total redundancy; the
        # analogue should land in the same regime
        rb = measure_redundancy(analogue_graph("Email-EuAll", scale=0.5))
        assert rb.total_fraction > 0.5

    def test_partition_reuse(self):
        g = analogue_graph("USA-roadNY", scale=0.3)
        partition = graph_partition(g)
        rb = measure_redundancy(g, partition=partition)
        rb2 = measure_redundancy(g)
        assert rb.w_apgre == rb2.w_apgre

    def test_empty_graph(self):
        rb = measure_redundancy(from_edges([], n=3))
        assert rb.essential_fraction == 1.0
        assert rb.total_fraction == 0.0


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        frac = phase_breakdown(analogue_graph("Email-Enron", scale=0.3))
        assert set(frac) == {"partition", "alpha_beta", "top_bc", "rest_bc"}
        assert abs(sum(frac.values()) - 1.0) < 1e-9
        assert all(v >= 0 for v in frac.values())

    def test_forces_serial(self):
        from repro.core.config import APGREConfig

        config = APGREConfig(parallel="processes", workers=2)
        frac = phase_breakdown(
            analogue_graph("USA-roadNY", scale=0.3), config
        )
        # serial re-run still splits top vs rest
        assert frac["top_bc"] > 0


class TestStats:
    def test_graph_stats_fields(self):
        g = paper_example_graph()
        s = graph_stats(g, name="paper")
        assert s.name == "paper"
        assert s.num_vertices == 13
        assert s.directed
        assert s.num_articulation_points == 3
        assert s.num_pendants == 2  # vertices 0 and 1
        assert 0 < s.pendant_fraction < 1
        assert s.max_degree >= s.mean_degree > 0

    def test_graph_stats_undirected_pendants(self):
        s = graph_stats(star_graph(5))
        assert s.num_pendants == 5

    def test_partition_stats_rows(self):
        g = analogue_graph("Email-Enron", scale=0.3)
        partition = graph_partition(g)
        s = partition_stats(partition, name="enron", keep=3)
        assert len(s.rows) == 3
        assert s.top.num_arcs >= s.rows[1].num_arcs >= s.rows[2].num_arcs
        assert 0 < s.top.vertex_fraction <= 1
        assert s.num_subgraphs == partition.num_subgraphs

    def test_partition_stats_pads_missing_rows(self):
        g = cycle_graph(5)
        s = partition_stats(graph_partition(g), keep=3)
        assert s.rows[1].num_vertices == 0
        assert s.rows[2].num_arcs == 0


class TestTimers:
    def test_stopwatch(self):
        with stopwatch() as t:
            time.sleep(0.01)
        assert t.seconds >= 0.009

    def test_timer_accumulates(self):
        timer = Timer()
        for _ in range(2):
            with timer.phase("a"):
                time.sleep(0.005)
        with timer.phase("b"):
            pass
        assert timer.totals["a"] >= 0.009
        assert 0 <= timer.fraction("b") < timer.fraction("a")
        assert abs(timer.fraction("a") + timer.fraction("b") - 1.0) < 1e-9

    def test_timer_empty_fraction(self):
        assert Timer().fraction("missing") == 0.0
