"""Parallel-batched pool bench: serial batched vs the worker pool.

The coarse-level companion to ``bench_batched_kernel.py``: the same
two >= 50k-vertex suite graphs and fixed source sample, measuring the
serial batched path (``batch_size="auto"``, its best configuration)
against the persistent shared-memory pool
(:mod:`repro.parallel.batched_pool`) at ``WORKERS`` workers with work
stealing on.  The pooled run uses a fixed batch width that yields
``~2 x WORKERS`` batches so the LPT/steal scheduler has something to
schedule; scores are asserted against serial to 1e-9 and the
WorkCounter edge tallies must match exactly.

Every row also reports ``model_speedup`` — the work/critical-path
bound ``sum(batch) / lpt_makespan(batch, WORKERS)`` from
:mod:`repro.parallel.scheduler` — and the JSON embeds the environment
provenance block, because the measured column is only meaningful next
to the core count that produced it.

Honest numbers note: the PR targeted >= 2.5x over serial batched at 4
workers.  That is a multi-core number; on this repository's 1-CPU
container the four workers timeshare one core and the measured speedup
is ~1x minus fork/shared-memory overhead, so the 2.5x assertion is
gated on ``available_workers() >= 4`` and the committed
``BENCH_parallel.json`` records the single-core measurement plus the
model column (see EXPERIMENTS.md on why the single-core host reports a
model column at all).  The unconditional guards are correctness, exact
tallies, and not falling below half the committed baseline.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.common import WorkCounter, run_per_source
from repro.bench.persistence import environment_provenance
from repro.bench.workloads import get_graph
from repro.metrics.teps import examined_mteps
from repro.parallel.pool import available_workers
from repro.parallel.scheduler import lpt_makespan
from repro.parallel.supervisor import RunHealth

pytestmark = pytest.mark.benchmarks

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: (suite graph, scale, sources) — the BENCH_baseline.json workloads.
WORKLOADS = [
    ("USA-roadBAY", 10.5, 128),
    ("WikiTalk", 49.0, 128),
]
QUICK_WORKLOADS = [
    ("USA-roadBAY", 3.0, 32),
]
SEED = 42
REPEAT = 2  # best-of: absorbs one-off scheduler noise
WORKERS = 4
QUICK_WORKERS = 2


def _best_of(fn, repeat=REPEAT):
    best = None
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def measure_workload(name, scale, n_sources, workers=WORKERS):
    """One graph's serial-batched vs pooled measurement row."""
    graph = get_graph(name, scale=scale)
    rng = np.random.default_rng(SEED)
    sources = np.sort(
        rng.choice(graph.n, size=min(n_sources, graph.n), replace=False)
    ).tolist()
    # fixed pool batch width: ~2 batches per worker, so LPT placement
    # and stealing have a schedule to work with (auto would often give
    # one batch for the whole sample, leaving workers idle)
    pool_batch = max(len(sources) // (2 * workers), 1)
    n_batches = -(-len(sources) // pool_batch)
    weights = [
        min(pool_batch, len(sources) - lo)
        for lo in range(0, len(sources), pool_batch)
    ]

    counter = WorkCounter()
    run_per_source(
        graph, sources=sources, mode="arcs", counter=counter,
        batch_size="auto",
    )
    edges = counter.edges
    serial, t_serial = _best_of(
        lambda: run_per_source(
            graph, sources=sources, mode="arcs", batch_size="auto"
        )
    )
    health = RunHealth()
    pool_counter = WorkCounter()

    def pooled_run():
        return run_per_source(
            graph,
            sources=sources,
            mode="arcs",
            batch_size=pool_batch,
            workers=workers,
        )

    pooled, t_pooled = _best_of(pooled_run)
    # correctness + exact-tally checks on an instrumented run
    checked = run_per_source(
        graph,
        sources=sources,
        mode="arcs",
        batch_size=pool_batch,
        workers=workers,
        counter=pool_counter,
        health=health,
    )
    np.testing.assert_allclose(pooled, serial, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(checked, serial, rtol=1e-9, atol=1e-9)
    serial_same_batch = WorkCounter()
    run_per_source(
        graph, sources=sources, mode="arcs", counter=serial_same_batch,
        batch_size=pool_batch,
    )
    assert pool_counter.edges == serial_same_batch.edges, (
        f"{name}: pooled edge tally {pool_counter.edges} != serial "
        f"{serial_same_batch.edges}"
    )
    return {
        "graph": name,
        "scale": scale,
        "n": graph.n,
        "m": graph.num_arcs,
        "sources": len(sources),
        "workers": workers,
        "pool_batch": pool_batch,
        "batches": n_batches,
        "edges_examined": edges,
        "serial_batched_seconds": round(t_serial, 4),
        "pooled_seconds": round(t_pooled, 4),
        "serial_batched_mteps": round(examined_mteps(edges, t_serial), 2),
        "pooled_mteps": round(examined_mteps(edges, t_pooled), 2),
        "speedup": round(t_serial / t_pooled, 3),
        "model_speedup": round(
            sum(weights) / lpt_makespan(weights, workers), 3
        ),
        "steals": health.steals,
        "health": health.summary(),
    }


def run_bench(quick=False, out_path=None):
    """Measure every workload; returns (payload, path written)."""
    workloads = QUICK_WORKLOADS if quick else WORKLOADS
    workers = QUICK_WORKERS if quick else WORKERS
    rows = [measure_workload(*w, workers=workers) for w in workloads]
    payload = {
        "bench": "bench_parallel_batched",
        "seed": SEED,
        "repeat": REPEAT,
        "quick": quick,
        "environment": environment_provenance(workers=workers),
        "workloads": rows,
    }
    if out_path is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out_path = RESULTS_DIR / "bench_parallel_batched.json"
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload, Path(out_path)


def check_rows(rows, *, quick=False):
    """Perf guards, scaled to what this machine can actually show."""
    cores = available_workers()
    for row in rows:
        if not quick and cores >= row["workers"]:
            # the real acceptance bar — only measurable with the cores
            assert row["speedup"] >= 2.5, (
                f"{row['graph']}: {row['speedup']}x at {row['workers']} "
                f"workers on {cores} cores (target >= 2.5x)"
            )
        # scheduler-model sanity: the LPT bound must show headroom for
        # the fan-out even when the host cannot
        assert row["model_speedup"] >= 2.0 or row["workers"] < 4, (
            f"{row['graph']}: LPT model speedup {row['model_speedup']}x "
            f"leaves the pool starved — batch plan is wrong"
        )
    if quick or not BASELINE_PATH.exists():
        return
    baseline = json.loads(BASELINE_PATH.read_text())
    base_rows = {r["graph"]: r for r in baseline["workloads"]}
    for row in rows:
        base = base_rows.get(row["graph"])
        if base is None:
            continue
        assert row["speedup"] >= 0.5 * base["speedup"], (
            f"{row['graph']}: pooled speedup {row['speedup']}x fell to "
            f"less than half the committed baseline {base['speedup']}x"
        )


def test_parallel_batched_smoke(results_dir):
    payload, _ = run_bench(quick=False)
    print(json.dumps(payload, indent=2))
    check_rows(payload["workloads"], quick=False)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph, 2 workers — the CI smoke configuration",
    )
    parser.add_argument(
        "--out", default=None, help="output JSON path (default: results/)"
    )
    args = parser.parse_args(argv)
    payload, out_path = run_bench(quick=args.quick, out_path=args.out)
    print(json.dumps(payload, indent=2))
    check_rows(payload["workloads"], quick=args.quick)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
