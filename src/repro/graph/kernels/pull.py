"""Direction-optimizing (push/pull) batched multi-source BFS.

The top-down kernels expand the union frontier's *out*-arcs every
level; on small-diameter graphs one or two levels saturate — the
frontier covers most of the graph and nearly every probed arc lands on
an already-discovered head.  Beamer's direction-optimizing BFS flips
those levels around: instead of pushing the huge frontier, *pull* into
the (by then small) unvisited set — one masked CSR-transpose gather
over the in-arcs of every still-undiscovered ``(row, vertex)`` pair,
keeping exactly the arcs whose tail sits on the current level.

σ-counting changes the cost model versus plain reachability BFS: a
bottom-up vertex cannot stop at its first discovered parent, because
σ(v) is the *sum* of σ over all parents at the current level — every
in-arc of the unvisited set is probed.  The switch test therefore
compares full masses: flip to bottom-up when

    ``frontier_arcs > alpha * unvisited_arcs``

(both restricted to rows whose BFS is still running) and flip back
when the inequality reverses, re-evaluated every level.  ``alpha``
defaults to :data:`PULL_ALPHA`; with probe counts symmetric the win
comes from replacing the top-down sort-based frontier deduplication
(``np.unique`` over the candidate arcs) with bincounts over the
unvisited set, so the crossover sits below mass parity.

Exactness contract:

* distances and σ are identical to the top-down kernel (σ sums the
  same parents, only float association differs — and σ values are
  integral, so they are equal exactly);
* the recorded shortest-path-DAG arcs are the *same set* per level
  (sorted by tail, so the arcs backward sweeps replay unchanged);
* ``edges_traversed`` counts top-down probes, ``edges_pulled`` counts
  bottom-up probes — arcs *actually examined* either way, so their sum
  is the run's true examined-arc total (inside TEPS), while
  ``direction_switches`` counts flips (bookkeeping, outside TEPS).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AlgorithmError
from repro.graph.batched import (
    BatchedBFSResult,
    BatchWorkspace,
    accumulate_dependencies_batched,
)
from repro.graph.csr import CSRGraph
from repro.types import SCORE_DTYPE

__all__ = ["PULL_ALPHA", "bfs_sigma_batched_pull", "pull_contributions"]

#: Push→pull threshold on arc masses.  Beamer's classic 1/14 assumes
#: bottom-up early exit; σ-counting probes every unvisited in-arc, so
#: the honest crossover is near mass parity, nudged below it because a
#: pulled level replaces the top-down sort-based dedup with bincounts.
PULL_ALPHA = 0.7


def bfs_sigma_batched_pull(
    graph: CSRGraph,
    sources,
    *,
    alpha: float = PULL_ALPHA,
    keep_level_arcs: bool = False,
    workspace: Optional[BatchWorkspace] = None,
) -> BatchedBFSResult:
    """Direction-optimizing forward BFS with σ counting for a batch.

    Same contract as :func:`repro.graph.batched.bfs_sigma_batched`
    (per-row ``dist``/``sigma``, per-level DAG arcs sorted by tail),
    with per-level top-down/bottom-up selection.  The result's
    ``edges_traversed``/``edges_pulled`` split the examined-arc tally
    by direction; ``direction_switches`` counts the flips.
    """
    n = graph.n
    srcs = np.asarray(sources, dtype=np.int64).ravel()
    b = srcs.size
    if b == 0:
        raise AlgorithmError("batched BFS needs at least one source")
    fdtype = np.int32 if b * n <= np.iinfo(np.int32).max else np.int64
    if workspace is None:
        dist = np.full((b, n), -1, dtype=np.int32)
        sigma = np.zeros((b, n), dtype=SCORE_DTYPE)
    else:
        dist_buf, sigma_buf, _ = workspace.arrays(b, n)
        dist_buf.fill(-1)
        sigma_buf.fill(0.0)
        dist = dist_buf.reshape(b, n)
        sigma = sigma_buf.reshape(b, n)
    dist_flat = dist.reshape(-1)
    sigma_flat = sigma.reshape(-1)
    rows0 = np.arange(b, dtype=np.int64)
    frontier = (rows0 * n + srcs).astype(fdtype)
    dist_flat[frontier] = 0
    sigma_flat[frontier] = 1.0
    level_arcs = [] if keep_level_arcs else None
    empty = np.empty(0, dtype=fdtype)

    out_indptr, out_indices = graph.out_indptr, graph.out_indices
    in_indptr, in_indices = graph.in_indptr, graph.in_indices
    m = out_indices.size
    pdtype = np.int64 if m > np.iinfo(np.int32).max else np.int32
    out_ip = out_indptr.astype(pdtype, copy=False)
    out_deg = (out_indptr[1:] - out_indptr[:-1]).astype(pdtype, copy=False)
    in_ip = in_indptr.astype(pdtype, copy=False)
    in_deg = (in_indptr[1:] - in_indptr[:-1]).astype(pdtype, copy=False)
    in_deg64 = in_deg.astype(np.int64, copy=False)
    iota = np.arange(min(m, 1024) or 1, dtype=pdtype)

    # Beamer's bottom-up cost estimate, maintained incrementally: the
    # in-arc mass still pointing at undiscovered vertices, per row
    row_unvisited = np.full(b, int(in_deg64.sum()), dtype=np.int64)
    row_unvisited -= in_deg64[srcs]

    pushed = 0
    pulled = 0
    switches = 0
    pulling = False
    unvisited = empty  # flat candidates, maintained while pulling
    level = 0
    while frontier.size:
        verts = frontier % n
        frontier_arcs = int(out_deg[verts].sum(dtype=np.int64))
        act_rows = np.unique(frontier // n)
        unvisited_arcs = int(row_unvisited[act_rows].sum())
        want_pull = (
            frontier_arcs > 0
            and unvisited_arcs > 0
            and frontier_arcs > alpha * unvisited_arcs
        )

        if want_pull:
            if not pulling:
                switches += 1
                pulling = True
                # materialise the unvisited candidates of active rows
                act = np.zeros(b, dtype=bool)
                act[act_rows] = True
                act_idx = np.flatnonzero(act)
                r_i, v_i = np.nonzero(dist[act_idx] < 0)
                unvisited = (
                    act_idx[r_i] * np.int64(n) + v_i
                ).astype(fdtype)
            uverts = unvisited % n
            counts = in_deg[uverts]
            total = int(counts.sum(dtype=np.int64))
            pulled += total
            if total == 0:
                if level_arcs is not None:
                    level_arcs.append((empty, empty))
                break
            if total > iota.size:
                iota = np.arange(total, dtype=pdtype)
            starts = in_ip[uverts]
            cum = np.cumsum(counts)
            pos = iota[:total] + np.repeat(starts - cum + counts, counts)
            nbr = in_indices[pos]
            flat_nbr = np.repeat(unvisited - uverts, counts) + nbr
            at_lvl = dist_flat[flat_nbr] == level
            vid = np.repeat(
                np.arange(unvisited.size, dtype=pdtype), counts
            )
            hit_v = vid[at_lvl]
            nhits = np.bincount(hit_v, minlength=unvisited.size)
            fresh = nhits > 0
            t_src = flat_nbr[at_lvl]
            if level_arcs is not None:
                t_dst = np.repeat(unvisited, counts)[at_lvl]
                order = np.argsort(t_src, kind="stable")
                level_arcs.append((t_src[order], t_dst[order]))
            if not fresh.any():
                break
            sums = np.bincount(
                hit_v,
                weights=sigma_flat[t_src],
                minlength=unvisited.size,
            )
            nxt = unvisited[fresh]
            dist_flat[nxt] = level + 1
            sigma_flat[nxt] = sums[fresh]
            rows_nxt = (nxt // n).astype(np.int64)
            np.subtract.at(row_unvisited, rows_nxt, in_deg64[uverts[fresh]])
            unvisited = unvisited[~fresh]
            # rows whose search just ended leave the candidate set
            act = np.zeros(b, dtype=bool)
            act[rows_nxt] = True
            if unvisited.size:
                unvisited = unvisited[act[(unvisited // n).astype(np.int64)]]
            frontier = nxt
            level += 1
            continue

        if pulling:
            switches += 1
            pulling = False
            unvisited = empty
        # top-down level: identical to bfs_sigma_batched's step, plus
        # the incremental unvisited-mass bookkeeping
        starts = out_ip[verts]
        counts = out_deg[verts]
        total = frontier_arcs
        pushed += total
        if total == 0:
            if level_arcs is not None:
                level_arcs.append((empty, empty))
            break
        if total > iota.size:
            iota = np.arange(total, dtype=pdtype)
        cum = np.cumsum(counts)
        pos = iota[:total] + np.repeat(starts - cum + counts, counts)
        dst = out_indices[pos]
        flat_src = np.repeat(frontier, counts)
        flat_dst = np.repeat(frontier - verts, counts) + dst
        dmask = dist_flat[flat_dst] < 0
        t_src = flat_src[dmask]
        t_dst = flat_dst[dmask]
        if t_dst.size:
            nxt, inv = np.unique(t_dst, return_inverse=True)
            dist_flat[nxt] = level + 1
            sigma_flat[nxt] = np.bincount(
                inv, weights=sigma_flat[t_src], minlength=nxt.size
            )
            rows_nxt = (nxt // n).astype(np.int64)
            np.subtract.at(
                row_unvisited, rows_nxt,
                in_deg64[(nxt - rows_nxt * n).astype(np.int64)],
            )
        else:
            nxt = empty
        if level_arcs is not None:
            level_arcs.append((t_src, t_dst))
        if nxt.size == 0:
            break
        frontier = nxt
        level += 1

    return BatchedBFSResult(
        sources=srcs,
        dist=dist,
        sigma=sigma,
        level_arcs=level_arcs,
        edges_traversed=pushed,
        edges_pulled=pulled,
        direction_switches=switches,
    )


def tally_traversal(counter, res: BatchedBFSResult) -> None:
    """Fold a forward result's examined-arc split into ``counter``.

    Counters that understand the split (``add_pulled``/``add_switch``,
    e.g. :class:`repro.baselines.common.WorkCounter`) record it; plain
    ``add``-only counters get pulled probes folded into the main tally
    so ``counter.edges`` stays the true examined total either way.
    """
    if counter is None:
        return
    counter.add(res.edges_traversed)
    if res.edges_pulled:
        add_pulled = getattr(counter, "add_pulled", None)
        (add_pulled if add_pulled is not None else counter.add)(
            res.edges_pulled
        )
    if res.direction_switches:
        add_switch = getattr(counter, "add_switch", None)
        if add_switch is not None:
            add_switch(res.direction_switches)


def pull_contributions(
    graph: CSRGraph,
    sources,
    *,
    counter=None,
    workspace: Optional[BatchWorkspace] = None,
    context=None,
    alpha: float = PULL_ALPHA,
) -> np.ndarray:
    """Summed BC contributions of one batch via the push/pull kernel.

    Forward direction-optimizing BFS + the standard recorded-DAG
    backward sweep (the per-level arc sets are identical to the
    top-down kernels, so :func:`accumulate_dependencies_batched`
    replays them unchanged); source self-dependencies zeroed, rows
    summed.  Backward replays land in ``edges_traversed`` exactly as
    the ``arcs`` kernel counts them.
    """
    srcs = np.asarray(sources, dtype=np.int64).ravel()
    res = bfs_sigma_batched_pull(
        graph, srcs, alpha=alpha, keep_level_arcs=True,
        workspace=workspace,
    )
    tally_traversal(counter, res)
    delta = accumulate_dependencies_batched(
        res, counter=counter, workspace=workspace
    )
    delta[np.arange(srcs.size), srcs] = 0.0
    return delta.sum(axis=0)
