"""Supervised coarse-grained execution: the fault-tolerant pool.

``fork_map`` (:mod:`repro.parallel.pool`) inherits the paper's
assumption that workers never die: one OOM-killed child hangs or kills
an entire APGRE run.  :func:`supervised_map` is the drop-in,
fault-tolerant replacement used by the APGRE driver, the
source-parallel baselines and the benchmark harness.  It dispatches
each task to a dedicated worker over a pipe (future-style, one
in-flight task per worker) and supervises the pool:

* **crash detection** — a dead worker is noticed via pipe EOF /
  ``Process.is_alive`` instead of hanging a blind ``Pool.map``;
* **per-task wall-clock timeouts** — a stuck worker is killed, never
  left occupying the pool;
* **bounded retry with exponential backoff** — crashed, timed-out,
  raising and corrupt-result tasks are re-dispatched up to
  ``max_retries`` times, each retry delayed by
  ``backoff_base * backoff_factor**(attempt-1)`` seconds;
* **graceful degradation** — a task that exhausts its pool retries is
  re-run *inline* in the parent (the serial rung), and a pool whose
  respawn budget is spent is abandoned entirely, draining every
  remaining task serially.  With ``fallback=False`` the same events
  raise :class:`~repro.errors.WorkerCrashError` /
  :class:`~repro.errors.TaskTimeoutError` instead.

Every event is tallied in a :class:`RunHealth` report (attached to
``BCResult.health`` by the APGRE driver) so a degraded run is visible,
not silent.  All failure paths are exercised deterministically by the
fault-injection harness (:mod:`repro.parallel.faults`); see
docs/ROBUSTNESS.md for the full degradation ladder.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ExecutionError, TaskTimeoutError, WorkerCrashError
from repro.parallel import faults as _faults
from repro.parallel import pool as _pool

__all__ = [
    "SupervisorConfig",
    "TaskOutcome",
    "RunHealth",
    "supervised_map",
    "call_with_timeout",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Fault-tolerance policy for one :func:`supervised_map` call.

    Attributes
    ----------
    timeout:
        Per-task wall-clock budget in seconds, measured from dispatch
        to a worker; ``None`` disables timeouts.
    max_retries:
        Pool re-dispatches allowed per task *after* its first attempt.
        ``0`` means any failure goes straight to the serial rung.
    backoff_base / backoff_factor:
        Retry ``k`` (1-based) of a task waits
        ``backoff_base * backoff_factor**(k-1)`` seconds before being
        re-dispatched (the pool keeps serving other tasks meanwhile).
    fallback:
        ``True`` (default) enables the serial rungs of the degradation
        ladder; ``False`` turns exhausted retries into
        :class:`WorkerCrashError` / :class:`TaskTimeoutError`.
    max_pool_failures:
        Worker deaths (crashes + timeout kills) tolerated before the
        pool is declared unhealthy and abandoned; ``None`` auto-sizes
        to ``max(2 * workers, 4)``.
    validate:
        Optional ``validate(payload, result) -> bool`` hook; a
        ``False`` verdict marks the result corrupt and retries the
        task like any other failure.
    poll_interval:
        Supervisor wake-up granularity in seconds (bounds how late a
        timeout or backoff expiry can be noticed).
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    fallback: bool = True
    max_pool_failures: Optional[int] = None
    validate: Optional[Callable[[Any, Any], bool]] = None
    poll_interval: float = 0.02

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base must be >= 0 and "
                             "backoff_factor >= 1")
        if self.max_pool_failures is not None and self.max_pool_failures < 0:
            raise ValueError("max_pool_failures must be >= 0")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")

    def backoff(self, retry: int) -> float:
        """Delay before re-dispatching retry ``retry`` (1-based)."""
        return self.backoff_base * self.backoff_factor ** max(retry - 1, 0)


@dataclass
class TaskOutcome:
    """Final fate of one task, with the event trail that led there."""

    task: int
    attempts: int
    status: str  # "ok-pool" | "ok-serial" | "failed"
    events: List[str] = field(default_factory=list)


@dataclass
class RunHealth:
    """Supervision report for one (or several merged) supervised maps.

    A run with ``ok`` True saw no fault of any kind; ``degraded`` True
    means at least one task left the happy path (retry, serial re-run,
    pool abandonment or a whole-computation fallback).
    """

    tasks: int = 0
    pool_ok: int = 0          # tasks that succeeded in the pool
    retries: int = 0          # pool re-dispatches
    steals: int = 0           # batches run off their LPT-planned worker
    worker_crashes: int = 0   # dead workers detected
    timeouts: int = 0         # tasks killed for exceeding the budget
    task_errors: int = 0      # exceptions raised inside workers
    corrupt_results: int = 0  # validate() rejections
    serial_retries: int = 0   # tasks resolved on the serial rung
    workers_spawned: int = 0
    pool_abandoned: bool = False
    drained_serial: int = 0   # tasks drained serially after abandonment
    inline: bool = False      # whole map ran inline (no pool involved)
    fallback_path: str = ""   # ""|"serial"|"brandes": computation-level rung
    interrupted: bool = False  # run stopped by SIGINT/SIGTERM drain
    journal_records: int = 0  # contributions durably journaled this run
    journal_resumable: bool = False  # a journal exists to resume from
    outcomes: List[TaskOutcome] = field(default_factory=list)

    @property
    def faults(self) -> int:
        """Total faults observed (crashes + timeouts + errors + corrupt)."""
        return (self.worker_crashes + self.timeouts
                + self.task_errors + self.corrupt_results)

    @property
    def degraded(self) -> bool:
        return bool(
            self.faults or self.serial_retries or self.pool_abandoned
            or self.drained_serial or self.fallback_path
        )

    @property
    def ok(self) -> bool:
        return not self.degraded

    def merge(self, other: "RunHealth") -> "RunHealth":
        """Fold another report into this one (multi-phase runs)."""
        self.tasks += other.tasks
        self.pool_ok += other.pool_ok
        self.retries += other.retries
        self.steals += other.steals
        self.worker_crashes += other.worker_crashes
        self.timeouts += other.timeouts
        self.task_errors += other.task_errors
        self.corrupt_results += other.corrupt_results
        self.serial_retries += other.serial_retries
        self.workers_spawned += other.workers_spawned
        self.pool_abandoned = self.pool_abandoned or other.pool_abandoned
        self.drained_serial += other.drained_serial
        self.inline = self.inline and other.inline
        self.fallback_path = self.fallback_path or other.fallback_path
        self.interrupted = self.interrupted or other.interrupted
        self.journal_records += other.journal_records
        self.journal_resumable = (
            self.journal_resumable or other.journal_resumable
        )
        self.outcomes.extend(other.outcomes)
        return self

    def summary(self) -> str:
        """One-line human-readable digest."""
        if self.inline and not self.degraded:
            return f"ok: {self.tasks} task(s) inline"
        if self.ok:
            return f"ok: {self.tasks} task(s), no faults"
        parts = [f"degraded: {self.tasks} task(s)"]
        for label, count in (
            ("crash", self.worker_crashes),
            ("timeout", self.timeouts),
            ("error", self.task_errors),
            ("corrupt", self.corrupt_results),
            ("retry", self.retries),
            ("serial", self.serial_retries + self.drained_serial),
        ):
            if count:
                parts.append(f"{count} {label}")
        if self.pool_abandoned:
            parts.append("pool abandoned")
        if self.fallback_path:
            parts.append(f"fell back to {self.fallback_path}")
        if self.interrupted:
            parts.append("interrupted")
        if self.journal_resumable:
            parts.append(
                f"resumable ({self.journal_records} journaled)"
            )
        return ", ".join(parts)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_main(conn, func: Callable[[Any], Any]) -> None:
    """Worker loop: recv (task, attempt, payload), send (task, status, value).

    ``func`` arrives through fork inheritance (never pickled), as do
    the worker-global state (:mod:`repro.parallel.pool`) and the fault
    plan (:mod:`repro.parallel.faults`).
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        if msg is None:
            return
        index, attempt, payload = msg
        try:
            _faults.fire_pre_faults(index, attempt)
            value = func(payload)
            value = _faults.apply_corruption(index, attempt, value)
        except BaseException as exc:  # any task bug must reach the parent
            try:
                conn.send((index, "error", exc))
            except Exception:
                conn.send((index, "error",
                           ExecutionError(f"unpicklable worker exception: "
                                          f"{exc!r}")))
        else:
            try:
                conn.send((index, "ok", value))
            except Exception as exc:
                conn.send((index, "error",
                           ExecutionError(f"unpicklable worker result: "
                                          f"{exc!r}")))


@dataclass
class _Task:
    index: int
    payload: Any
    attempts: int = 0          # dispatches so far
    not_before: float = 0.0    # backoff gate (monotonic clock)
    events: List[str] = field(default_factory=list)


class _Worker:
    __slots__ = ("process", "conn", "task", "deadline", "wid")

    def __init__(self, process, conn, wid: int = 0) -> None:
        self.process = process
        self.conn = conn
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None
        # stable pool slot id in [0, workers): survives respawns so
        # affinity-based schedulers can keep addressing "worker 2"
        # after the process occupying that slot died
        self.wid = wid

    def kill(self) -> None:
        try:
            self.process.kill()
            self.process.join()
        except Exception:  # pragma: no cover - already-reaped races
            pass
        self.conn.close()


def _spawn_worker(ctx, func, health: RunHealth, wid: int = 0) -> _Worker:
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(
        target=_worker_main, args=(child_conn, func), daemon=True
    )
    proc.start()
    child_conn.close()
    health.workers_spawned += 1
    return _Worker(proc, parent_conn, wid)


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------
class _PoolSupervisor:
    """Drives one supervised map over a pool of dedicated workers."""

    def __init__(self, func, payloads, workers, config, health):
        self.func = func
        self.config = config
        self.health = health
        self.workers = workers
        self.ctx = mp.get_context("fork")
        self.num_tasks = len(payloads)
        self.pending: List[_Task] = [
            _Task(i, p) for i, p in enumerate(payloads)
        ]
        self.results: Dict[int, Any] = {}
        self.idle: List[_Worker] = []
        self.busy: List[_Worker] = []
        self._free_wids: List[int] = list(range(workers))
        self.pool_failures = 0
        budget = config.max_pool_failures
        self.failure_budget = (
            budget if budget is not None else max(2 * workers, 4)
        )
        self.abandoned = False

    # -- lifecycle -----------------------------------------------------
    def run(self) -> List[Any]:
        try:
            while self.pending or self.busy:
                if self.abandoned:
                    self._drain_serial()
                    break
                self._dispatch()
                self._collect()
                self._reap_crashes()
                self._reap_timeouts()
        except KeyboardInterrupt:
            self._drain_interrupted()
            raise
        finally:
            self._shutdown()
        return [self.results[i] for i in range(self.num_tasks)]

    def _drain_interrupted(self) -> None:
        """Graceful SIGINT/SIGTERM drain: finish in-flight tasks only.

        Nothing pending is dispatched; the workers already running a
        task are given up to one task-timeout (else 10s) to deliver
        their result so their work is not discarded mid-write.  A
        second interrupt during the drain aborts it immediately.  The
        caller still sees the original :class:`KeyboardInterrupt` —
        this only bounds how much completed work it can salvage.
        """
        self.health.interrupted = True
        self.pending = []
        deadline = time.monotonic() + (self.config.timeout or 10.0)
        try:
            while self.busy and time.monotonic() < deadline:
                self._collect()
                self._reap_crashes()
        except KeyboardInterrupt:
            pass  # second interrupt: stop draining now

    def _shutdown(self) -> None:
        for worker in self.idle:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self.idle:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck exit
                worker.kill()
            else:
                worker.conn.close()
        for worker in self.busy:
            worker.kill()
        self.idle = []
        self.busy = []

    # -- scheduling ----------------------------------------------------
    def _match(self, ready: List[_Task]) -> Optional[tuple]:
        """Pick the next ``(wid, task)`` pairing, or ``None`` to wait.

        The base policy is FIFO over ready tasks onto any available
        slot (an idle worker, else the lowest free slot id, which
        triggers a spawn).  Subclasses override this to implement
        affinity-aware scheduling — the work-stealing pool in
        :mod:`repro.parallel.batched_pool` matches tasks to the worker
        slots the LPT plan assigned them to.
        """
        if not ready:
            return None
        if self.idle:
            return self.idle[-1].wid, ready[0]
        if self._free_wids:
            return min(self._free_wids), ready[0]
        return None

    def _release_wid(self, worker: _Worker) -> None:
        if worker.wid not in self._free_wids:
            self._free_wids.append(worker.wid)

    def _dispatch(self) -> None:
        now = time.monotonic()
        ready = [t for t in self.pending if t.not_before <= now]
        while True:
            match = self._match(ready)
            if match is None:
                break
            wid, task = match
            ready.remove(task)
            self.pending.remove(task)
            worker = next((w for w in self.idle if w.wid == wid), None)
            if worker is not None:
                self.idle.remove(worker)
            else:
                self._free_wids.remove(wid)
                worker = _spawn_worker(self.ctx, self.func, self.health, wid)
            try:
                worker.conn.send((task.index, task.attempts, task.payload))
            except (BrokenPipeError, OSError):
                # worker died between jobs; treat as a crash of this task
                worker.kill()
                self._release_wid(worker)
                self.health.worker_crashes += 1
                self.pool_failures += 1
                self._record_failure(task, "crash")
                self._check_pool_health()
                continue
            task.attempts += 1
            worker.task = task
            worker.deadline = (
                now + self.config.timeout
                if self.config.timeout is not None
                else None
            )
            self.busy.append(worker)

    def _wait_budget(self) -> float:
        """Sleep horizon: nearest deadline/backoff, capped by poll_interval."""
        horizon = self.config.poll_interval
        now = time.monotonic()
        for worker in self.busy:
            if worker.deadline is not None:
                horizon = min(horizon, max(worker.deadline - now, 0.0))
        for task in self.pending:
            horizon = min(horizon, max(task.not_before - now, 0.0))
        return horizon

    # -- event handling ------------------------------------------------
    def _collect(self) -> None:
        budget = self._wait_budget()
        if not self.busy:
            if self.pending:  # everything is backing off
                time.sleep(budget)
            return
        conns = [w.conn for w in self.busy]
        for conn in mp_connection.wait(conns, timeout=budget):
            worker = next(w for w in self.busy if w.conn is conn)
            try:
                index, status, value = worker.conn.recv()
            except (EOFError, OSError):
                continue  # died mid-send; _reap_crashes handles it
            task = worker.task
            assert task is not None and task.index == index
            self.busy.remove(worker)
            worker.task = None
            worker.deadline = None
            if status == "ok":
                validate = self.config.validate
                if validate is not None and not validate(
                    task.payload, value
                ):
                    self.health.corrupt_results += 1
                    self.idle.append(worker)
                    self._record_failure(task, "corrupt")
                else:
                    self.results[index] = value
                    self.health.pool_ok += 1
                    self.idle.append(worker)
                    self._finish(task, "ok-pool")
            else:  # the task function raised inside the worker
                self.health.task_errors += 1
                self.idle.append(worker)
                task.events.append(f"error:{type(value).__name__}")
                self._record_failure(task, "error", note=False)

    def _reap_crashes(self) -> None:
        for worker in list(self.busy):
            if worker.process.is_alive():
                continue
            self.busy.remove(worker)
            worker.conn.close()
            self._release_wid(worker)
            task = worker.task
            assert task is not None
            self.health.worker_crashes += 1
            self.pool_failures += 1
            self._record_failure(task, "crash")
        self._check_pool_health()

    def _reap_timeouts(self) -> None:
        now = time.monotonic()
        for worker in list(self.busy):
            if worker.deadline is None or now <= worker.deadline:
                continue
            self.busy.remove(worker)
            task = worker.task
            assert task is not None
            worker.kill()  # the only reliable way to reclaim the slot
            self._release_wid(worker)
            self.health.timeouts += 1
            self.pool_failures += 1
            self._record_failure(task, "timeout")
        self._check_pool_health()

    def _check_pool_health(self) -> None:
        if not self.abandoned and self.pool_failures > self.failure_budget:
            self.abandoned = True
            self.health.pool_abandoned = True

    # -- retry / degradation ladder -------------------------------------
    def _record_failure(
        self, task: _Task, kind: str, *, note: bool = True
    ) -> None:
        if note:
            task.events.append(kind)
        if task.attempts <= self.config.max_retries:
            self.health.retries += 1
            task.events.append("retry")
            task.not_before = time.monotonic() + self.config.backoff(
                task.attempts
            )
            self.pending.append(task)
            return
        if not self.config.fallback:
            self._finish(task, "failed")
            detail = (
                f"task {task.index} failed after {task.attempts} "
                f"attempt(s): {' -> '.join(task.events)}"
            )
            if kind == "timeout":
                raise TaskTimeoutError(detail)
            if kind == "crash":
                raise WorkerCrashError(detail)
            raise ExecutionError(detail)
        self._run_serial(task)

    def _run_serial(self, task: _Task) -> None:
        """The serial rung: re-run the task inline in the parent."""
        self.health.serial_retries += 1
        task.events.append("serial")
        value = self.func(task.payload)
        validate = self.config.validate
        if validate is not None and not validate(task.payload, value):
            self._finish(task, "failed")
            raise ExecutionError(
                f"task {task.index} produced an invalid result even on "
                f"the serial rung ({' -> '.join(task.events)})"
            )
        self.results[task.index] = value
        self._finish(task, "ok-serial")

    def _drain_serial(self) -> None:
        """Pool abandoned: resolve every unfinished task inline."""
        unfinished = sorted(
            self.pending + [w.task for w in self.busy if w.task is not None],
            key=lambda t: t.index,
        )
        for worker in self.busy:
            worker.kill()
        self.busy = []
        self.pending = []
        if not self.config.fallback and unfinished:
            for task in unfinished:
                self._finish(task, "failed")
            raise WorkerCrashError(
                f"pool unhealthy after {self.pool_failures} worker "
                f"failure(s) and fallback is disabled "
                f"({len(unfinished)} task(s) unresolved)"
            )
        for task in unfinished:
            self.health.drained_serial += 1
            task.events.append("drain-serial")
            self.results[task.index] = self.func(task.payload)
            self._finish(task, "ok-serial")

    def _finish(self, task: _Task, status: str) -> None:
        self.health.outcomes.append(
            TaskOutcome(
                task=task.index,
                attempts=task.attempts,
                status=status,
                events=list(task.events),
            )
        )


def supervised_map(
    func: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    workers: int,
    state: Optional[dict] = None,
    config: Optional[SupervisorConfig] = None,
    health: Optional[RunHealth] = None,
) -> List[Any]:
    """Fault-tolerant :func:`repro.parallel.pool.fork_map` replacement.

    Same contract — a module-level ``func`` mapped over small
    ``payloads`` with heavy context in ``state``, results in payload
    order — plus the supervision policy of ``config`` with events
    tallied into ``health`` (pass a :class:`RunHealth` to collect
    them; it is mutated in place).

    Inline degradation contract: ``workers == 1``, a single payload or
    a platform without ``fork`` runs the map in-process with
    bit-identical results (``health.inline`` is set and no supervision
    applies — there is no worker to crash).  Raises ``ValueError`` for
    ``workers < 1``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    config = config or SupervisorConfig()
    health = health if health is not None else RunHealth()
    health.tasks += len(payloads)
    installed = state is not None
    if installed:
        _pool._install_state(state)
    try:
        if (
            workers == 1
            or len(payloads) <= 1
            or not _pool._supports_fork()
        ):
            health.inline = True
            out = [func(p) for p in payloads]
            for i in range(len(payloads)):
                health.outcomes.append(
                    TaskOutcome(task=i, attempts=1, status="ok-pool",
                                events=["inline"])
                )
            return out
        supervisor = _PoolSupervisor(
            func, payloads, min(workers, len(payloads)), config, health
        )
        return supervisor.run()
    finally:
        if installed:
            _pool._STATE.clear()


# ----------------------------------------------------------------------
# single supervised call (bench runner jobs)
# ----------------------------------------------------------------------
def _call_child(conn, func, args, kwargs) -> None:
    try:
        value = func(*args, **kwargs)
    except BaseException as exc:
        try:
            conn.send(("error", exc))
        except Exception:
            conn.send(("error",
                       ExecutionError(f"unpicklable exception: {exc!r}")))
    else:
        try:
            conn.send(("ok", value))
        except Exception as exc:
            conn.send(("error",
                       ExecutionError(f"unpicklable result: {exc!r}")))


def call_with_timeout(
    func: Callable[..., Any],
    *args: Any,
    timeout: Optional[float],
    **kwargs: Any,
) -> Any:
    """Run ``func(*args, **kwargs)`` under a wall-clock budget.

    The call executes in a forked child so a runaway computation can
    be killed cleanly; the result (or the exception the call raised,
    re-raised here with its original type) travels back over a pipe.
    ``timeout=None`` — or a platform without ``fork`` — degrades to a
    plain in-process call.

    Raises
    ------
    TaskTimeoutError
        The budget elapsed (the child is killed first).
    WorkerCrashError
        The child died without reporting a result.
    """
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be > 0, got {timeout}")
    if timeout is None or not _pool._supports_fork():
        return func(*args, **kwargs)
    ctx = mp.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(
        target=_call_child, args=(child_conn, func, args, kwargs),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    try:
        if not parent_conn.poll(timeout):
            proc.kill()
            proc.join()
            raise TaskTimeoutError(
                f"{getattr(func, '__name__', func)!s} exceeded "
                f"{timeout:g}s wall-clock budget"
            )
        try:
            status, value = parent_conn.recv()
        except (EOFError, OSError):
            proc.join()
            raise WorkerCrashError(
                f"worker died while running "
                f"{getattr(func, '__name__', func)!s} "
                f"(exit code {proc.exitcode})"
            ) from None
    finally:
        parent_conn.close()
    proc.join()
    if status == "ok":
        return value
    if isinstance(value, BaseException):
        raise value
    raise ExecutionError(str(value))  # pragma: no cover - defensive
