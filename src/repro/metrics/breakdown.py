"""Execution-time breakdown of APGRE (paper Figure 8).

Figure 8 splits an APGRE run into graph partition, α/β counting, BC
of the top sub-graph and BC of everything else, showing that "the
extra computations take 25.7%, 23%, ..." and "the BC calculation of
the top sub-graph is the majority of the total execution time".
:func:`phase_breakdown` reruns an instrumented serial APGRE and
returns those shares.
"""

from __future__ import annotations

from typing import Dict

from repro.core.apgre import apgre_bc_detailed
from repro.core.config import APGREConfig
from repro.graph.csr import CSRGraph

__all__ = ["phase_breakdown"]


def phase_breakdown(
    graph: CSRGraph, config: APGREConfig | None = None
) -> Dict[str, float]:
    """Fractions of APGRE wall time per phase.

    Returns a dict with keys ``partition``, ``alpha_beta``, ``top_bc``
    and ``rest_bc`` summing to 1. The run is forced serial — the
    top/rest split is only well defined without overlapping workers.
    """
    config = config or APGREConfig()
    if config.parallel != "serial":
        config = APGREConfig(
            threshold=config.threshold,
            alpha_beta_method=config.alpha_beta_method,
            eliminate_pendants=config.eliminate_pendants,
            parallel="serial",
            workers=1,
        )
    result = apgre_bc_detailed(graph, config)
    return result.stats.timings.fractions()
