"""Tests for structural validation — each invariant must be detectable."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graph.csr import CSRGraph
from repro.graph.validate import validate_graph
from repro.types import INDPTR_DTYPE, VERTEX_DTYPE


def make_raw(n, out_indptr, out_indices, in_indptr, in_indices, directed):
    """Assemble a CSRGraph from raw (possibly broken) arrays."""
    return CSRGraph(
        n,
        np.asarray(out_indptr, dtype=INDPTR_DTYPE),
        np.asarray(out_indices, dtype=VERTEX_DTYPE),
        np.asarray(in_indptr, dtype=INDPTR_DTYPE),
        np.asarray(in_indices, dtype=VERTEX_DTYPE),
        directed,
    )


class TestBrokenInvariants:
    def test_indptr_wrong_length(self):
        g = make_raw(3, [0, 1, 1], [1], [0, 0, 1, 1], [0], True)
        with pytest.raises(GraphValidationError, match="n\\+1 entries"):
            validate_graph(g)

    def test_indptr_not_starting_at_zero(self):
        g = make_raw(2, [1, 1, 1], [], [0, 0, 0], [], True)
        with pytest.raises(GraphValidationError, match="start at 0"):
            validate_graph(g)

    def test_indptr_not_ending_at_arc_count(self):
        g = make_raw(2, [0, 1, 5], [1], [0, 0, 1], [0], True)
        with pytest.raises(GraphValidationError, match="end at"):
            validate_graph(g)

    def test_indptr_decreasing(self):
        g = make_raw(3, [0, 2, 1, 3], [1, 2, 0], [0, 1, 2, 3], [2, 0, 1], True)
        with pytest.raises(GraphValidationError, match="non-decreasing"):
            validate_graph(g)

    def test_out_of_range_target(self):
        g = make_raw(2, [0, 1, 1], [5], [0, 0, 1], [0], True)
        with pytest.raises(GraphValidationError, match="out-of-range"):
            validate_graph(g)

    def test_unsorted_row(self):
        g = make_raw(3, [0, 2, 2, 2], [2, 1], [0, 0, 1, 2], [0, 0], True)
        with pytest.raises(GraphValidationError, match="sorted"):
            validate_graph(g)

    def test_duplicate_in_row(self):
        g = make_raw(2, [0, 2, 2], [1, 1], [0, 0, 2], [0, 0], True)
        with pytest.raises(GraphValidationError, match="sorted"):
            validate_graph(g)

    def test_self_loop(self):
        g = make_raw(2, [0, 1, 1], [0], [0, 1, 1], [0], True)
        with pytest.raises(GraphValidationError, match="self-loops"):
            validate_graph(g)

    def test_reverse_not_transpose(self):
        # forward 0->1, reverse claims 1<-... wrong source
        g = make_raw(3, [0, 1, 1, 1], [1], [0, 0, 0, 1], [1], True)
        with pytest.raises(GraphValidationError, match="transpose"):
            validate_graph(g)

    def test_undirected_must_share_arrays(self):
        fwd_ip = np.asarray([0, 1, 2], dtype=INDPTR_DTYPE)
        fwd_ix = np.asarray([1, 0], dtype=VERTEX_DTYPE)
        g = CSRGraph(2, fwd_ip, fwd_ix, fwd_ip.copy(), fwd_ix.copy(), False)
        with pytest.raises(GraphValidationError, match="share"):
            validate_graph(g)

    def test_undirected_asymmetric(self):
        # 0->1 present, 1->0 missing in a shared "undirected" CSR
        ip = np.asarray([0, 1, 1], dtype=INDPTR_DTYPE)
        ix = np.asarray([1], dtype=VERTEX_DTYPE)
        g = CSRGraph(2, ip, ix, ip, ix, False)
        with pytest.raises(GraphValidationError, match="symmetric"):
            validate_graph(g)

    def test_arc_count_mismatch_between_directions(self):
        g = make_raw(2, [0, 1, 1], [1], [0, 0, 0], [], True)
        with pytest.raises(GraphValidationError):
            validate_graph(g)


class TestValidGraphs:
    def test_empty(self):
        validate_graph(CSRGraph.from_arcs(0, [], [], directed=True))
        validate_graph(CSRGraph.from_arcs(4, [], [], directed=False))

    def test_well_formed_passes(self):
        validate_graph(
            CSRGraph.from_arcs(4, [0, 1, 2], [1, 2, 3], directed=True)
        )
        validate_graph(
            CSRGraph.from_arcs(4, [0, 1, 2], [1, 2, 3], directed=False)
        )
