"""Extra comparators beyond the paper's Table 2 (related-work methods).

Benchmarks the extension algorithms on a few representative graphs:

* ``algebraic`` — Buluç–Gilbert CombBLAS-style batched BC (paper §6
  [23]); batching amortises per-level overhead, making it the fastest
  *non-decomposing* method in this Python setting.
* ``sampling`` — the §5.2 GPU-sampling comparison row (k = n/10
  pivots), reported with its rank correlation against exact scores.
* edge betweenness — the Girvan–Newman quantity, exercised at suite
  scale.
"""

import numpy as np
import pytest

from repro.baselines import (
    algebraic_bc,
    brandes_bc,
    edge_betweenness_bc,
    sampling_bc,
)
from repro.bench.report import render_table
from repro.bench.runner import time_algorithm
from repro.bench.workloads import bench_graph_names, get_graph

from conftest import one_shot

_GRAPHS = [
    n
    for n in ("Email-Enron", "WikiTalk", "USA-roadNY")
    if n in bench_graph_names()
] or bench_graph_names()[:1]


@pytest.mark.parametrize("name", _GRAPHS)
def test_algebraic(benchmark, name):
    graph = get_graph(name)
    scores = one_shot(benchmark, algebraic_bc, graph)
    serial = time_algorithm("serial", graph, graph_name=name)
    assert np.allclose(scores, serial.scores, rtol=1e-6, atol=1e-5)
    benchmark.group = f"extra-{name}"


@pytest.mark.parametrize("name", _GRAPHS)
def test_sampling(benchmark, name):
    graph = get_graph(name)
    k = max(graph.n // 10, 1)
    est = one_shot(benchmark, sampling_bc, graph, k, seed=1)
    serial = time_algorithm("serial", graph, graph_name=name)
    corr = float(np.corrcoef(est, serial.scores)[0, 1])
    assert corr > 0.7, f"sampling decorrelated on {name}: {corr:.3f}"
    benchmark.group = f"extra-{name}"
    benchmark.extra_info["corr_vs_exact"] = round(corr, 4)


@pytest.mark.parametrize(
    "name", [n for n in _GRAPHS if not get_graph(n).directed] or _GRAPHS[:1]
)
def test_treefold(benchmark, name):
    from repro.core.treefold import treefold_bc

    graph = get_graph(name)
    if graph.directed:
        pytest.skip("tree folding is undirected-only")
    scores = one_shot(benchmark, treefold_bc, graph)
    serial = time_algorithm("serial", graph, graph_name=name)
    assert np.allclose(scores, serial.scores, rtol=1e-6, atol=1e-5)
    benchmark.group = f"extra-{name}"


@pytest.mark.parametrize("name", _GRAPHS[:1])
def test_edge_betweenness(benchmark, name):
    graph = get_graph(name)
    scores = one_shot(benchmark, edge_betweenness_bc, graph)
    assert scores.shape == (graph.num_arcs,)
    benchmark.group = f"extra-{name}"


def test_report_extra(benchmark, report, results_dir, capsys):
    import time

    rows = []
    for name in _GRAPHS:
        graph = get_graph(name)
        serial = time_algorithm("serial", graph, graph_name=name)
        t0 = time.perf_counter()
        algebraic_bc(graph)
        t_alg = time.perf_counter() - t0
        t0 = time.perf_counter()
        sampling_bc(graph, max(graph.n // 10, 1), seed=1)
        t_smp = time.perf_counter() - t0
        rows.append([name, serial.seconds, t_alg, t_smp])

    def _build():
        from repro.bench.runner import ExperimentResult

        return ExperimentResult(
            exp_id="Extra",
            title="Related-work comparators (not in the paper's Table 2)",
            headers=["Graph", "serial", "algebraic", "sampling(n/10)"],
            rows=rows,
            notes="algebraic = CombBLAS-style batched BC (paper ref [23])",
        )

    result = one_shot(benchmark, _build)
    report(result)
