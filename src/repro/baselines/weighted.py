"""Weighted-graph betweenness centrality (extension).

The paper restricts itself to unweighted graphs (BFS shortest paths);
its related work cites Edmonds et al. for the weighted case. This
module supplies the standard Dijkstra-based Brandes variant so
downstream users with weighted road networks are not stranded:
per-source Dijkstra with path counting, then dependency accumulation
in non-increasing distance order.

Weights must be positive (Dijkstra's requirement); ties in path length
are counted exactly like the unweighted σ recursion. With unit weights
the result coincides with :func:`repro.baselines.brandes.brandes_bc`,
which the tests assert.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.errors import AlgorithmError, GraphValidationError
from repro.graph.csr import CSRGraph
from repro.types import SCORE_DTYPE

__all__ = ["DijkstraResult", "dijkstra_sigma", "weighted_brandes_bc"]


class DijkstraResult:
    """Forward phase of weighted Brandes for one source.

    Attributes
    ----------
    source:
        The Dijkstra root.
    dist:
        float distances (``inf`` marks unreachable vertices).
    sigma:
        shortest-path counts.
    order:
        vertices in settle order (non-decreasing distance) — the
        backward phase walks it reversed.
    preds:
        ``preds[w]`` lists ``w``'s shortest-path predecessors.
    """

    __slots__ = ("source", "dist", "sigma", "order", "preds")

    def __init__(self, source, dist, sigma, order, preds) -> None:
        self.source = source
        self.dist = dist
        self.sigma = sigma
        self.order = order
        self.preds = preds


def dijkstra_sigma(
    graph: CSRGraph,
    source: int,
    weights: np.ndarray,
    *,
    tolerance: float = 1e-12,
) -> DijkstraResult:
    """Dijkstra with shortest-path counting (weighted Brandes phase 1).

    ``weights`` follows the CSR arc order; ties within ``tolerance``
    count as equal-length paths (σ accumulates across them).
    """
    n = graph.n
    indptr, indices = graph.out_indptr, graph.out_indices
    dist = np.full(n, np.inf)
    sigma = np.zeros(n, dtype=SCORE_DTYPE)
    dist[source] = 0.0
    sigma[source] = 1.0
    preds: list[list[int]] = [[] for _ in range(n)]
    order: list[int] = []
    done = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d_v, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        order.append(v)
        for e in range(int(indptr[v]), int(indptr[v + 1])):
            w = int(indices[e])
            cand = d_v + float(weights[e])
            if cand < dist[w] - tolerance:
                dist[w] = cand
                sigma[w] = sigma[v]
                preds[w] = [v]
                heapq.heappush(heap, (cand, w))
            elif abs(cand - dist[w]) <= tolerance and not done[w]:
                sigma[w] += sigma[v]
                preds[w].append(v)
    return DijkstraResult(source, dist, sigma, order, preds)


def weighted_brandes_bc(
    graph: CSRGraph,
    weights: Optional[np.ndarray] = None,
    *,
    tolerance: float = 1e-12,
) -> np.ndarray:
    """Exact BC on a positively weighted graph (Dijkstra + Brandes).

    Parameters
    ----------
    graph:
        Any graph; arc order of ``weights`` follows the CSR arc order
        (``graph.arcs()``). For undirected graphs supply a weight per
        stored arc — both orientations, which must agree.
    weights:
        Positive float array of length ``graph.num_arcs``; ``None``
        means unit weights (degenerates to unweighted BC).
    tolerance:
        Two path lengths within ``tolerance`` count as equal when
        accumulating σ (floating-point tie detection).
    """
    n = graph.n
    m = graph.num_arcs
    if weights is None:
        weights = np.ones(m, dtype=SCORE_DTYPE)
    else:
        weights = np.asarray(weights, dtype=SCORE_DTYPE)
        if weights.shape != (m,):
            raise GraphValidationError(
                f"weights must have one entry per arc ({m}), "
                f"got shape {weights.shape}"
            )
        if (weights <= 0).any():
            raise AlgorithmError(
                "Dijkstra-based BC requires strictly positive weights"
            )
    bc = np.zeros(n, dtype=SCORE_DTYPE)
    for s in range(n):
        res = dijkstra_sigma(graph, s, weights, tolerance=tolerance)
        delta = np.zeros(n, dtype=SCORE_DTYPE)
        for w in reversed(res.order):
            for v in res.preds[w]:
                delta[v] += res.sigma[v] / res.sigma[w] * (1.0 + delta[w])
            if w != s:
                bc[w] += delta[w]
    return bc
