"""GIL-free threaded execution backend for batched BC.

The process pool (:mod:`repro.parallel.batched_pool`) buys multicore
parallelism at the price of fork startup, pickled acks, SharedArray
segments and a commit protocol that must survive a worker dying
mid-accumulation.  The batched SpMM kernel never amortises those costs
on the graphs we target — the committed benchmarks honestly recorded
*sub*-serial pooled speedups.  But the kernel's hot loop is
``scipy.sparse._sparsetools.csr_matmat``, which releases the GIL, so
worker *threads* get true multicore execution with none of that
machinery:

* the CSR is shared in-process — no publication step, no per-worker
  copy (see ``auto_batch_size(shared_csr=True)`` for the RAM model);
* each worker thread accumulates its batches' score deltas into a
  private ``(n,)`` vector; the parent tree-reduces the per-thread rows
  once at the end, so no commit protocol and no poisoned slots — a
  fold either happened exactly once or the batch is recomputed;
* per-batch examined-edge tallies are recorded exactly per batch and
  summed, so WorkCounter totals are *identical* to the serial chunk
  loop regardless of placement, retries or degradation.

Supervision mirrors the PR 1 policy knobs (:class:`SupervisorConfig`)
with thread-appropriate mechanics: a task that exceeds its wall-clock
budget cannot be killed (threads are not processes), so the parent
*abandons* the attempt — bumping the task's generation counter so the
late result is discarded at fold time — spawns a replacement thread,
and retries or resolves the task on the serial rung.  An injected
``kill`` fault raises :class:`~repro.parallel.faults.WorkerThreadKilled`
inside the worker, which exits its loop like a dead process; crashes
and timeouts share the pool-failure budget and the same degradation
ladder (retry → serial rung → pool abandonment → serial drain), all
tallied into :class:`RunHealth`.

Two pipelining measures keep the threads busy: workers claim a fused
*quantum* of several source batches per queue lock acquisition, and
each worker defers folding batch *i*'s delta until batch *i+1* has
been computed (double-buffered workspaces in
:func:`threaded_bc_scores` keep both deltas valid), so the reduce of
one batch overlaps the compute of the next.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError, TaskTimeoutError, WorkerCrashError
from repro.graph.batched import BatchWorkspace
from repro.graph.csr import CSRGraph
from repro.parallel import faults as _faults
from repro.parallel.batched_pool import (
    EngineTotals,
    _EdgeTally,
    _tally3,
    merge_examined,
    tree_reduce,
)
from repro.parallel.scheduler import assign_lpt, lpt_order
from repro.parallel.supervisor import (
    RunHealth,
    SupervisorConfig,
    TaskOutcome,
)
from repro.types import SCORE_DTYPE

__all__ = ["threaded_contributions", "threaded_bc_scores"]


def _fuse_quantum(num: int, workers: int, fuse: Optional[int]) -> int:
    """Batches claimed per queue-lock acquisition (the fused quantum).

    Large runs amortise dispatch over a few batches per claim; short
    runs keep the quantum at 1 so the LPT tail stays balanced.
    """
    if fuse is not None:
        if fuse < 1:
            raise ValueError(f"fuse must be >= 1, got {fuse}")
        return int(fuse)
    return max(1, min(4, num // (4 * max(workers, 1))))


@dataclass
class _ThreadTask:
    """One source batch in the threaded run's shared queue."""

    index: int                 # dispatch position in LPT order
    batch: int                 # batch id handed to ``compute``
    affinity: int              # worker slot the LPT plan assigned
    attempts: int = 0          # claims so far
    gen: int = 0               # bumped when an attempt is abandoned
    not_before: float = 0.0    # backoff gate (monotonic clock)
    deadline: Optional[float] = None  # current attempt's budget
    done: bool = False         # contribution folded exactly once
    events: List[str] = field(default_factory=list)


class _ThreadRun:
    """Shared mutable state of one threaded map (lock-protected)."""

    def __init__(
        self,
        compute: Callable,
        tasks: List[_ThreadTask],
        n: int,
        workers: int,
        steal: bool,
        quantum: int,
        config: SupervisorConfig,
        health: RunHealth,
    ) -> None:
        self.compute = compute
        self.tasks = tasks
        self.n = n
        self.workers = workers
        self.steal = steal
        self.quantum = quantum
        self.config = config
        self.health = health
        self.lock = threading.Lock()
        self.events: "queue.Queue" = queue.Queue()
        self.stop = threading.Event()
        self.pending: List[_ThreadTask] = list(tasks)  # LPT order
        self.remaining = len(tasks)
        # per-batch (edges, pulled, switches) tally rows, written by
        # idempotent assignment (compute is deterministic)
        self.batch_edges = np.zeros(
            (max(t.batch for t in tasks) + 1, 3), dtype=np.int64
        )
        self.rows: List[np.ndarray] = []
        self.threads: List[threading.Thread] = []
        self.pool_failures = 0
        budget = config.max_pool_failures
        self.failure_budget = (
            budget if budget is not None else max(2 * workers, 4)
        )
        self.abandoned = False

    # -- worker side ---------------------------------------------------
    def _claim(self, wid: int) -> List[Tuple[_ThreadTask, int, int]]:
        """Claim up to a quantum of ready tasks (affinity first).

        Returns ``(task, attempt, gen)`` snapshots; the generation lets
        the fold detect that the parent abandoned this attempt while it
        was computing.  Called with the lock held.
        """
        now = time.monotonic()
        picked: List[Tuple[_ThreadTask, int, int]] = []
        own = [
            t for t in self.pending
            if t.affinity == wid and t.not_before <= now
        ]
        for task in own[: self.quantum]:
            self.pending.remove(task)
            picked.append((task, task.attempts, task.gen))
            task.attempts += 1
        if picked or not self.steal:
            return picked
        # steal: the queue is LPT-ordered, so the first ready task is
        # the heaviest remaining one — same victim policy as the pool
        for task in list(self.pending):
            if task.not_before > now:
                continue
            self.pending.remove(task)
            task.events.append(f"steal:{task.affinity}->{wid}")
            task.affinity = wid
            self.health.steals += 1
            picked.append((task, task.attempts, task.gen))
            task.attempts += 1
            if len(picked) >= self.quantum:
                break
        return picked

    def _worker(self, wid: int, row: np.ndarray) -> None:
        deferred: Optional[tuple] = None
        replaced = False

        def fold(item: tuple) -> bool:
            """Fold one finished batch; False if the attempt is stale."""
            task, gen, verts, delta, edges = item
            with self.lock:
                if task.done or task.gen != gen:
                    # the parent abandoned this attempt (timeout) or
                    # resolved the task elsewhere: this thread's slot
                    # has been replaced, so it must bow out
                    return False
                task.done = True
                task.deadline = None
                self.batch_edges[task.batch] = _tally3(edges)
                self.remaining -= 1
            if verts is None:
                np.add(row, delta, out=row)
            else:
                np.add.at(row, verts, delta)
            self.events.put(("ok", task, gen))
            return True

        while not self.stop.is_set():
            with self.lock:
                claimed = self._claim(wid)
                idle_done = not claimed and self.remaining == 0
            if idle_done:
                break
            if not claimed:
                if deferred is not None:
                    if not fold(deferred):
                        replaced = True
                    deferred = None
                    if replaced:
                        break
                time.sleep(self.config.poll_interval)
                continue
            for task, attempt, gen in claimed:
                timeout = self.config.timeout
                task.deadline = (
                    time.monotonic() + timeout
                    if timeout is not None
                    else None
                )
                try:
                    _faults.fire_thread_faults(task.index, attempt)
                    verts, delta, edges = self.compute(task.batch)
                except _faults.WorkerThreadKilled:
                    # this worker "dies": flush the previous batch
                    # (it completed legitimately), report the crash,
                    # and exit the loop like a dead process would
                    if deferred is not None:
                        fold(deferred)
                        deferred = None
                    task.deadline = None
                    self.events.put(("crash", task, gen, wid))
                    return
                except BaseException as exc:
                    task.deadline = None
                    self.events.put(("error", task, gen, exc))
                    continue
                # the attempt met its budget: stop the clock now so a
                # deferred fold parked behind the next compute cannot
                # be mistaken for a stuck task
                task.deadline = None
                # deferred fold: reduce batch i while computing i+1
                if deferred is not None and not fold(deferred):
                    replaced = True
                deferred = (task, gen, verts, delta, edges)
                if replaced:
                    break
            if replaced:
                break
        if deferred is not None:
            fold(deferred)

    def spawn(self, wid: int) -> None:
        row = np.zeros(self.n, dtype=SCORE_DTYPE)
        self.rows.append(row)
        thread = threading.Thread(
            target=self._worker, args=(wid, row), daemon=True
        )
        self.threads.append(thread)
        self.health.workers_spawned += 1
        thread.start()

    # -- parent side ---------------------------------------------------
    def serial_run(self, task: _ThreadTask, extra: np.ndarray) -> None:
        """The trusted serial rung: compute in the parent, no hooks."""
        verts, delta, edges = self.compute(task.batch)
        with self.lock:
            task.done = True
            task.deadline = None
            self.batch_edges[task.batch] = _tally3(edges)
            self.remaining -= 1
        if verts is None:
            extra += delta
        else:
            extra[verts] += delta

    def finish(self, task: _ThreadTask, status: str) -> None:
        self.health.outcomes.append(
            TaskOutcome(
                task=task.index,
                attempts=task.attempts,
                status=status,
                events=list(task.events),
            )
        )

    def fail(
        self, task: _ThreadTask, kind: str, extra: np.ndarray
    ) -> None:
        """Retry with backoff, else serial rung (or raise)."""
        with self.lock:
            if task.done:
                return
            task.gen += 1  # discard any still-running stale attempt
            task.deadline = None
            if task.attempts <= self.config.max_retries:
                self.health.retries += 1
                task.events.append("retry")
                task.not_before = time.monotonic() + self.config.backoff(
                    task.attempts
                )
                self.pending.append(task)
                return
        if not self.config.fallback:
            self.stop.set()
            self.finish(task, "failed")
            detail = (
                f"task {task.index} failed after {task.attempts} "
                f"attempt(s): {' -> '.join(task.events)}"
            )
            if kind == "timeout":
                raise TaskTimeoutError(detail)
            if kind == "crash":
                raise WorkerCrashError(detail)
            raise ExecutionError(detail)
        self.health.serial_retries += 1
        task.events.append("serial")
        self.serial_run(task, extra)
        self.finish(task, "ok-serial")

    def scan_timeouts(self, extra: np.ndarray) -> None:
        now = time.monotonic()
        with self.lock:
            expired = [
                t for t in self.tasks
                if t.deadline is not None and now > t.deadline
                and not t.done
            ]
        for task in expired:
            task.events.append("timeout")
            self.health.timeouts += 1
            self.pool_failures += 1
            # the stuck thread cannot be killed; replace its slot so
            # pool capacity survives until the zombie bows out
            if not self.stop.is_set():
                self.spawn(task.affinity)
            self.fail(task, "timeout", extra)

    def handle(self, event: tuple, extra: np.ndarray) -> None:
        kind = event[0]
        if kind == "ok":
            _, task, gen = event
            self.health.pool_ok += 1
            self.finish(task, "ok-pool")
            return
        if kind == "error":
            _, task, gen, exc = event
            with self.lock:
                if task.done or task.gen != gen:
                    return  # stale attempt: already resolved
            self.health.task_errors += 1
            task.events.append(f"error:{type(exc).__name__}")
            self.fail(task, "error", extra)
            return
        # crash: the worker thread exited; restore pool capacity
        _, task, gen, wid = event
        with self.lock:
            stale = task.done or task.gen != gen
        self.health.worker_crashes += 1
        self.pool_failures += 1
        if not self.stop.is_set():
            self.spawn(wid)
        if not stale:
            task.events.append("crash")
            self.fail(task, "crash", extra)

    def drain_serial(self, extra: np.ndarray) -> None:
        """Pool abandoned: resolve every unfinished task in the parent."""
        self.abandoned = True
        self.health.pool_abandoned = True
        self.stop.set()
        with self.lock:
            unfinished = sorted(
                (t for t in self.tasks if not t.done),
                key=lambda t: t.index,
            )
            for task in unfinished:
                task.gen += 1
                task.deadline = None
            self.pending = []
        if not self.config.fallback and unfinished:
            for task in unfinished:
                self.finish(task, "failed")
            raise WorkerCrashError(
                f"pool unhealthy after {self.pool_failures} worker "
                f"failure(s) and fallback is disabled "
                f"({len(unfinished)} task(s) unresolved)"
            )
        for task in unfinished:
            self.health.drained_serial += 1
            task.events.append("drain-serial")
            self.serial_run(task, extra)
            self.finish(task, "ok-serial")

    def _horizon(self) -> float:
        horizon = self.config.poll_interval
        now = time.monotonic()
        with self.lock:
            for task in self.tasks:
                if task.deadline is not None and not task.done:
                    horizon = min(horizon, max(task.deadline - now, 0.0))
        return max(horizon, 0.001)

    def supervise(self, extra: np.ndarray) -> None:
        try:
            while True:
                with self.lock:
                    rem = self.remaining
                if rem == 0:
                    break
                if (
                    self.pool_failures > self.failure_budget
                    and not self.abandoned
                ):
                    self.drain_serial(extra)
                    break
                try:
                    event = self.events.get(timeout=self._horizon())
                except queue.Empty:
                    event = None
                if event is not None:
                    self.handle(event, extra)
                self.scan_timeouts(extra)
        except KeyboardInterrupt:
            # graceful drain: no new work, give in-flight folds up to
            # one task budget to land, then re-raise
            self.health.interrupted = True
            self.stop.set()
            with self.lock:
                self.pending = []
            deadline = time.monotonic() + (self.config.timeout or 10.0)
            while time.monotonic() < deadline:
                with self.lock:
                    busy = any(
                        t.deadline is not None and not t.done
                        for t in self.tasks
                    )
                if not busy:
                    break
                try:
                    event = self.events.get(timeout=0.05)
                except queue.Empty:
                    continue
                if event[0] == "ok":
                    self.handle(event, extra)
            raise
        finally:
            self.stop.set()
            for thread in self.threads:
                thread.join(timeout=5.0)
            # the fold that took ``remaining`` to zero may have queued
            # its "ok" after the loop already exited — account for it
            while True:
                try:
                    event = self.events.get_nowait()
                except queue.Empty:
                    break
                if event[0] == "ok":
                    self.handle(event, extra)


def threaded_contributions(
    compute: Callable[[int], Tuple[Optional[np.ndarray], np.ndarray, int]],
    weights: Sequence[float],
    *,
    n: int,
    workers: int,
    steal: bool = True,
    config: Optional[SupervisorConfig] = None,
    health: Optional[RunHealth] = None,
    fuse: Optional[int] = None,
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Accumulate ``compute(batch_id)`` deltas across worker threads.

    The threaded engine behind the ``threads`` backend, signature- and
    contract-compatible with the process pool's engine: ``compute``
    maps a batch id to ``(verts, delta, edges)``, must be deterministic,
    thread-safe and safe to re-run (retries and serial recovery
    recompute batches), and the return is ``(scores, edge_total,
    batch_edges)`` with the edge total the exact sum of the per-batch
    tallies.  ``compute`` runs concurrently on worker threads — it only
    parallelises work whose kernels release the GIL (the SpMM batched
    kernel does).

    ``fuse`` sets the scheduling quantum (batches claimed per queue
    access); the default adapts to the run size.  ``steal=False``
    restricts every worker to its LPT-planned batches.  Degrades inline
    (bit-identical to the serial chunk loop) for ``workers <= 1`` or a
    single batch.
    """
    num = len(weights)
    config = config or SupervisorConfig()
    health = health if health is not None else RunHealth()
    health.tasks += num
    total = np.zeros(n, dtype=SCORE_DTYPE)
    if num == 0:
        return total, EngineTotals(0), np.zeros(0, dtype=np.int64)
    if workers <= 1 or num == 1:
        health.inline = True
        split = np.zeros((num, 3), dtype=np.int64)
        for batch_id in range(num):
            verts, delta, edges = compute(batch_id)
            if verts is None:
                total += delta
            else:
                total[verts] += delta
            split[batch_id] = _tally3(edges)
            health.outcomes.append(
                TaskOutcome(task=batch_id, attempts=1, status="ok-pool",
                            events=["inline"])
            )
        batch_edges = split[:, 0] + split[:, 1]
        edge_total = EngineTotals(
            batch_edges.sum(dtype=np.int64),
            pulled=split[:, 1].sum(dtype=np.int64),
            switches=split[:, 2].sum(dtype=np.int64),
        )
        return total, edge_total, batch_edges

    workers = min(workers, num)
    order = lpt_order(weights)
    bins = assign_lpt(weights, workers)
    wid_of_batch = {
        batch: wid for wid, tasks in enumerate(bins) for batch in tasks
    }
    tasks = [
        _ThreadTask(index=p, batch=batch, affinity=wid_of_batch[batch])
        for p, batch in enumerate(order)
    ]
    run = _ThreadRun(
        compute, tasks, n, workers, steal,
        _fuse_quantum(num, workers, fuse), config, health,
    )
    extra = np.zeros(n, dtype=SCORE_DTYPE)
    for wid in range(workers):
        run.spawn(wid)
    run.supervise(extra)
    total = tree_reduce(run.rows + [extra])
    split = run.batch_edges[:num].copy()
    batch_edges = split[:, 0] + split[:, 1]
    edge_total = EngineTotals(
        batch_edges.sum(dtype=np.int64),
        pulled=split[:, 1].sum(dtype=np.int64),
        switches=split[:, 2].sum(dtype=np.int64),
    )
    return total, edge_total, batch_edges


def threaded_bc_scores(
    graph: CSRGraph,
    sources,
    *,
    batch: int,
    workers: int,
    steal: bool = True,
    kernel: Optional[str] = None,
    counter=None,
    config: Optional[SupervisorConfig] = None,
    health: Optional[RunHealth] = None,
    fuse: Optional[int] = None,
) -> np.ndarray:
    """BC contribution sum over ``sources`` on the thread pool.

    The threads-backend composition of
    :func:`repro.graph.batched.batched_bc_scores`: the same
    ``batch``-sized source chunks, fanned out across ``workers``
    threads over the *shared in-process CSR* — no SharedArray
    publication, no fork, no pickling.  One set of SpMM operands is
    built in the parent and read concurrently; every thread alternates
    between two private :class:`BatchWorkspace` buffers so the
    deferred fold of one chunk overlaps the compute of the next.

    Scores agree with the serial batched path within float64 reduction
    tolerance (≤1e-9 in practice) and the examined-edge tally added to
    ``counter`` is exactly the serial one.  Degrades inline
    (bit-identical to serial batched) for ``workers <= 1`` or a single
    chunk; otherwise supervision follows ``config`` with events
    tallied into ``health``.
    """
    from repro.graph import kernels as _kernels

    srcs = np.asarray(list(sources), dtype=np.int64).ravel()
    if srcs.size == 0:
        return np.zeros(graph.n, dtype=SCORE_DTYPE)
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    kernel = _kernels.resolve_kernel_name(
        kernel, graph=graph, batch=min(batch, srcs.size)
    )
    kern = _kernels.get_kernel(kernel)
    bounds = [
        (lo, min(lo + batch, srcs.size))
        for lo in range(0, srcs.size, batch)
    ]
    if workers <= 1 or len(bounds) == 1:
        from repro.graph.batched import batched_bc_scores

        if health is not None:
            health.tasks += len(bounds)
            health.inline = True
            for i in range(len(bounds)):
                health.outcomes.append(
                    TaskOutcome(task=i, attempts=1, status="ok-pool",
                                events=["inline"])
                )
        return batched_bc_scores(
            graph, srcs, batch=batch, counter=counter, kernel=kernel
        )

    # per-run shared context (SpMM operands, compiled kernels) built
    # once in the parent: threads share the address space, so every
    # worker reads the same structures concurrently
    ctx = (
        kern.prepare(graph, min(batch, srcs.size))
        if kern.prepare is not None
        else None
    )
    tls = threading.local()

    def compute(batch_id: int):
        lo, hi = bounds[batch_id]
        chunk = srcs[lo:hi]
        tally = _EdgeTally()
        # double-buffered per-thread workspaces: the engine folds
        # chunk i's delta while chunk i+1 computes, so each thread
        # alternates buffers to keep both chunks' state disjoint
        pair = getattr(tls, "pair", None)
        if pair is None:
            pair = (BatchWorkspace(), BatchWorkspace())
            tls.pair = pair
            tls.flip = 0
        ws = pair[tls.flip]
        tls.flip ^= 1
        delta = kern.contributions(
            graph, chunk, counter=tally, workspace=ws, context=ctx
        )
        return None, delta, tally.triple

    weights = [float(hi - lo) for lo, hi in bounds]
    total, edge_total, _ = threaded_contributions(
        compute,
        weights,
        n=graph.n,
        workers=workers,
        steal=steal,
        config=config,
        health=health,
        fuse=fuse,
    )
    merge_examined(counter, edge_total)
    return total
