"""Vertex-separator search: recursive BFS level-set bisection.

``find_shard_labels`` splits one (sub-)graph into ``k`` interior
classes plus a separator set such that

* interiors of different shards are pairwise non-adjacent — every
  path between them passes through the separator (the invariant the
  correction kernel builds on), and
* every interior is at most ``max_size`` vertices, unless a part
  cannot be split any further (complete-graph-like parts have no
  useful level cut).

The cut heuristic is the classic level-structure bisection: BFS from a
pseudo-peripheral vertex (two-sweep), then cut at the level whose
frontier is smallest relative to the smaller side it produces.  Each
side is re-examined recursively (per connected component, since
removing a level can disconnect a side).  Everything runs on the CSR
arrays through :func:`repro.graph.traversal.expand_frontier`; no
external partitioner is involved, and the result is a deterministic
function of the CSR — which is what makes shards fingerprintable.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import expand_frontier

__all__ = ["find_shard_labels"]


def _masked_bfs(g: CSRGraph, source: int, active: np.ndarray) -> np.ndarray:
    """BFS distances from ``source`` restricted to ``active`` vertices."""
    dist = np.full(g.n, -1, np.int64)
    dist[source] = 0
    frontier = np.array([source], np.int64)
    d = 0
    while frontier.size:
        dst, _src = expand_frontier(g.out_indptr, g.out_indices, frontier)
        if dst.size == 0:
            break
        dst = dst[active[dst] & (dist[dst] == -1)]
        if dst.size == 0:
            break
        frontier = np.unique(dst)
        d += 1
        dist[frontier] = d
    return dist


def _components(g: CSRGraph, verts: np.ndarray) -> List[np.ndarray]:
    """Connected components of the sub-graph induced by ``verts``."""
    active = np.zeros(g.n, bool)
    active[verts] = True
    out: List[np.ndarray] = []
    todo = verts.copy()
    while todo.size:
        dist = _masked_bfs(g, int(todo[0]), active)
        comp = np.flatnonzero((dist >= 0) & active)
        out.append(comp)
        active[comp] = False
        todo = todo[active[todo]]
    return out


def find_shard_labels(
    g: CSRGraph, max_size: int
) -> Tuple[np.ndarray, int]:
    """Label every vertex with a shard id or ``-1`` (separator).

    Returns ``(labels, k)``: ``labels[v]`` is the shard of vertex
    ``v`` in ``[0, k)``, or ``-1`` for separator vertices.  ``k == 1``
    (with an empty separator) means the graph resisted splitting;
    callers should fall back to the unsharded kernel.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    n = g.n
    labels = np.full(n, -1, np.int32)
    next_label = 0
    stack = _components(g, np.arange(n))
    while stack:
        part = stack.pop()
        if part.size <= max_size:
            labels[part] = next_label
            next_label += 1
            continue
        active = np.zeros(n, bool)
        active[part] = True
        # two-sweep pseudo-peripheral start: the deepest level
        # structure gives the thinnest frontiers to cut at
        d0 = _masked_bfs(g, int(part[0]), active)
        far = int(part[np.argmax(d0[part])])
        dist = _masked_bfs(g, far, active)
        dp = dist[part]
        depth = int(dp.max())
        if depth < 2:
            # diameter <= 1 within the part (clique-like): no level
            # cut leaves two non-empty sides
            labels[part] = next_label
            next_label += 1
            continue
        sizes = np.bincount(dp, minlength=depth + 1)
        cum = np.cumsum(sizes)
        best, best_cost = -1, np.inf
        for level in range(1, depth):
            below = int(cum[level - 1])
            above = int(part.size - cum[level])
            if below == 0 or above == 0:
                continue
            # thin separator first, balance as the tie-breaker: the
            # frontier size normalised by the smaller side it frees
            cost = sizes[level] / min(below, above)
            if cost < best_cost:
                best, best_cost = level, cost
        if best < 0:
            labels[part] = next_label
            next_label += 1
            continue
        labels[part[dp == best]] = -1
        stack.extend(_components(g, part[dp < best]))
        stack.extend(_components(g, part[dp > best]))
    return _consolidate(labels, next_label, max_size)


def _consolidate(
    labels: np.ndarray, k: int, max_size: int
) -> Tuple[np.ndarray, int]:
    """First-fit-decreasing packing of small parts into fewer shards.

    Interiors of one shard need not be connected — only the pairwise
    non-adjacency *between* interiors matters, and any union of
    existing interiors preserves it (each was already separated from
    every other).  Packing parts up to ``max_size`` keeps the shard
    count near ``ceil(n_interior / max_size)``, which means fewer
    barrier tables and coarser, better-balanced tasks.
    """
    if k <= 1:
        return labels, k
    sizes = np.bincount(labels[labels >= 0], minlength=k)
    order = np.argsort(-sizes, kind="stable")
    bins: List[int] = []  # remaining capacity per new shard
    remap = np.zeros(k, np.int32)
    for old in order:
        size = int(sizes[old])
        target = -1
        for b, cap in enumerate(bins):
            if cap >= size:
                target = b
                break
        if target < 0:
            target = len(bins)
            bins.append(max_size)
        bins[target] -= size
        remap[old] = target
    out = labels.copy()
    mask = labels >= 0
    out[mask] = remap[labels[mask]]
    return out, len(bins)
