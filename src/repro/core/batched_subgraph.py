"""Batched per-sub-graph BC (Algorithm 2 over root batches).

:func:`repro.core.bc_subgraph.bc_subgraph` runs the forward BFS and the
fused four-dependency backward sweep one root at a time; inside the
dominant top sub-graph (the bulk of Table 4's cost) that pays per-level
numpy dispatch overhead ``|R_sgi|`` times over.  This module runs a
batch of ``B`` roots through the ``(B, n)`` kernels of
:mod:`repro.graph.batched` instead, fusing the batch dimension into
every phase of Algorithm 2:

* Phase 0 initialisation broadcasts the ``α`` row across the batch and
  scales the ``δ_o2o`` rows by each root's own ``β(s)`` (zero for
  non-articulation roots, which keeps their ``δ_o2o`` sweep an exact
  no-op);
* Phase 2 replays the batch's shared per-level DAG arcs through three
  flattened scatter-adds — the same fused sweep as
  :func:`repro.core.dependencies.accumulate_four_dependencies`, one
  kernel launch per level for the whole batch;
* the score merge (equation 7) applies the per-root γ multiplicities,
  the four in/out dependency cases and the v == s pendant credit as
  row-vectorised expressions over the ``(B, n)`` matrices.

Scores match the per-source path within float64 summation tolerance
(the merge order differs), and the examined-edge tally is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.baselines.common import WorkCounter
from repro.decompose.partition import Subgraph
from repro.errors import AlgorithmError
from repro.graph.batched import (
    BatchedBFSResult,
    arc_segments,
    bfs_sigma_batched,
    resolve_batch_size,
)
from repro.types import SCORE_DTYPE, VERTEX_DTYPE

__all__ = [
    "BatchedFourDependencies",
    "accumulate_four_dependencies_batched",
    "bc_subgraph_batched",
]


@dataclass
class BatchedFourDependencies:
    """Per-vertex dependency matrices for one batch of roots.

    Row ``i`` of each matrix equals the serial
    :class:`~repro.core.dependencies.FourDependencies` arrays for
    ``sources[i]``; ``size_o2i[i]`` is ``β(s_i)`` when root ``i`` is a
    boundary articulation point and ``0.0`` otherwise.
    """

    sources: np.ndarray
    source_is_art: np.ndarray
    delta_i2i: np.ndarray
    delta_i2o: np.ndarray
    delta_o2o: np.ndarray
    size_o2i: np.ndarray


def accumulate_four_dependencies_batched(
    res: BatchedBFSResult,
    *,
    alpha: np.ndarray,
    beta: np.ndarray,
    is_art: np.ndarray,
    counter: Optional[WorkCounter] = None,
) -> BatchedFourDependencies:
    """Run the fused backward sweep for a whole batch of roots.

    The ``δ_o2o`` scatter only runs when at least one root in the batch
    is a boundary articulation point; rows whose root is not one have a
    zero ``β(s)`` initialisation, so sweeping them alongside art-rooted
    rows is numerically exact (0 stays 0).
    """
    if res.level_arcs is None:
        raise AlgorithmError(
            "batched four-dependency kernel needs keep_level_arcs=True"
        )
    b, n = res.dist.shape
    srcs = res.sources
    rows0 = np.arange(b)
    sigma_flat = res.sigma.reshape(-1)
    src_art = is_art[srcs].astype(bool)
    any_art = bool(src_art.any())
    size_o2i = np.where(src_art, beta[srcs].astype(SCORE_DTYPE), 0.0)

    delta_i2i = np.zeros((b, n), dtype=SCORE_DTYPE)
    delta_i2o = np.zeros((b, n), dtype=SCORE_DTYPE)
    delta_o2o = np.zeros((b, n), dtype=SCORE_DTYPE)

    # Phase 0 (Algorithm 2 lines 10-18), broadcast across the batch
    arts = np.flatnonzero(is_art)
    alpha_arts = alpha[arts].astype(SCORE_DTYPE)
    delta_i2o[:, arts] = alpha_arts
    delta_i2o[rows0, srcs] = 0.0  # "for all i ∈ A_sgi && i != s"
    if any_art:
        delta_o2o[:, arts] = size_o2i[:, None] * alpha_arts[None, :]
        delta_o2o[rows0, srcs] = 0.0

    # Phase 2 (lines 35-49): fused sweep, deepest level first, one
    # gather of σ_src/σ_dst feeding three flattened segmented sums
    # (level arcs are sorted by tail, see repro.graph.batched)
    i2i_flat = delta_i2i.reshape(-1)
    i2o_flat = delta_i2o.reshape(-1)
    o2o_flat = delta_o2o.reshape(-1)
    for flat_src, flat_dst in reversed(res.level_arcs):
        if counter is not None:
            counter.add(flat_src.size)
        if flat_src.size == 0:
            continue
        coef = sigma_flat[flat_src] / sigma_flat[flat_dst]
        tails, runs = arc_segments(flat_src)
        i2i_flat[tails] += np.add.reduceat(
            coef * (1.0 + i2i_flat[flat_dst]), runs
        )
        i2o_flat[tails] += np.add.reduceat(coef * i2o_flat[flat_dst], runs)
        if any_art:
            o2o_flat[tails] += np.add.reduceat(
                coef * o2o_flat[flat_dst], runs
            )

    return BatchedFourDependencies(
        sources=srcs,
        source_is_art=src_art,
        delta_i2i=delta_i2i,
        delta_i2o=delta_i2o,
        delta_o2o=delta_o2o,
        size_o2i=size_o2i,
    )


def bc_subgraph_batched(
    sg: Subgraph,
    *,
    eliminate_pendants: bool = True,
    counter: Optional[WorkCounter] = None,
    roots: Optional[np.ndarray] = None,
    batch_size: Union[int, str] = "auto",
    workers: int = 1,
    compress: bool = False,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Local BC scores of one sub-graph via the batched kernel.

    Same contract as :func:`repro.core.bc_subgraph.bc_subgraph` (root
    subsets from different calls still sum to the full sub-graph
    scores), with roots processed ``batch_size`` at a time; ``"auto"``
    resolves a RAM-safe batch from the sub-graph's own n and m divided
    by ``workers`` — pass the pool's worker count when several of
    these calls run concurrently, so they share one RAM budget instead
    of each claiming all of it.  ``compress=True`` routes through the
    structural compression kernel when any reduction rule fires (the
    shrunken core does not benefit from SpMM batching); trivial plans
    stay on the batched path.

    ``kernel`` picks the *forward traversal* strategy
    (:mod:`repro.graph.kernels`): ``"pull"`` (or ``"auto"`` resolving
    to it for this sub-graph) swaps in the direction-optimizing BFS,
    whose recorded per-level DAG arcs are identical to the push
    kernel's, so the fused four-dependency backward sweep replays them
    unchanged.  The other names keep the push forward — the sweep
    needs recorded arcs, which the spmm/numba score kernels do not
    produce (see docs/KERNELS.md).
    """
    if compress:
        from repro.compress import bc_subgraph_compressed, compression_plan

        plan = compression_plan(sg, eliminate_pendants=eliminate_pendants)
        if plan.nontrivial:
            return bc_subgraph_compressed(
                sg,
                plan,
                eliminate_pendants=eliminate_pendants,
                counter=counter,
                roots=roots,
            )
    g = sg.graph
    n = g.n
    undirected = not g.directed
    bc = np.zeros(n, dtype=SCORE_DTYPE)
    if n == 0:
        return bc
    if eliminate_pendants:
        gamma = sg.gamma
        if roots is None:
            roots = sg.roots
    else:
        gamma = np.zeros(n, dtype=SCORE_DTYPE)
        if roots is None:
            roots = np.arange(n, dtype=VERTEX_DTYPE)
    if roots.size == 0:
        return bc
    if kernel is not None:
        from repro.graph import kernels as _kernels

        kernel = _kernels.resolve_kernel_name(kernel, graph=g)
        if kernel != "pull":
            # only the direction-optimizing kernel changes the forward
            # sweep here; the four-dependency replay needs recorded
            # DAG arcs, which spmm/numba do not produce
            kernel = None
    batch = resolve_batch_size(
        batch_size, n, g.num_arcs, workers=workers, kernel=kernel
    )
    if batch is None:
        raise AlgorithmError("bc_subgraph_batched needs a batch size")

    alpha = sg.alpha
    beta = sg.beta
    is_art = sg.is_boundary_art

    for lo in range(0, roots.size, batch):
        srcs = np.asarray(roots[lo : lo + batch], dtype=np.int64)
        b = srcs.size
        rows0 = np.arange(b)
        res = bfs_sigma_batched(
            g, srcs, keep_level_arcs=True, kernel=kernel
        )
        if counter is not None:
            counter.add(res.edges_traversed)
            if res.edges_pulled:
                add_pulled = getattr(counter, "add_pulled", None)
                (add_pulled or counter.add)(res.edges_pulled)
            if res.direction_switches:
                add_switch = getattr(counter, "add_switch", None)
                if add_switch is not None:
                    add_switch(res.direction_switches)
        dep = accumulate_four_dependencies_batched(
            res, alpha=alpha, beta=beta, is_art=is_art, counter=counter
        )
        g_s = gamma[srcs].astype(SCORE_DTYPE)

        # merge for v != s, reached vertices only (equation 7): the
        # o2i/o2o terms carry per-row β(s)/art masks, so rows whose
        # root is not an articulation point contribute exact zeros
        contrib = (1.0 + g_s)[:, None] * (dep.delta_i2i + dep.delta_i2o)
        contrib += dep.size_o2i[:, None] * dep.delta_i2i
        if dep.source_is_art.any():
            contrib += dep.delta_o2o
        bc += np.where(res.dist >= 1, contrib, 0.0).sum(axis=0)

        # merge for v == s: the γ(s) derived pendant sources (roots
        # are unique, so the fancy-indexed += has no collisions)
        self_i2i = dep.delta_i2i[rows0, srcs] - (
            1.0 if undirected else 0.0
        )
        self_i2o = dep.delta_i2o[rows0, srcs] + np.where(
            dep.source_is_art, alpha[srcs].astype(SCORE_DTYPE), 0.0
        )
        bc[srcs] += g_s * (self_i2i + self_i2o)
    return bc
