"""Tests for Algorithm 1 (GraphPartition) and sub-graph construction."""

import numpy as np
import networkx as nx
import pytest

from repro.decompose.partition import (
    DEFAULT_THRESHOLD,
    graph_partition,
)
from repro.errors import PartitionError
from repro.graph.build import from_edges, from_networkx
from repro.graph.validate import validate_graph


class TestPartitionInvariants:
    def test_zoo_invariants(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        partition = graph_partition(g)
        partition.validate()
        for sg in partition.subgraphs:
            validate_graph(sg.graph)

    @pytest.mark.parametrize("threshold", [0, 2, 5, 16, 1000])
    def test_threshold_sweep_invariants(self, und_random, threshold):
        partition = graph_partition(und_random, threshold=threshold)
        partition.validate()

    def test_negative_threshold(self, und_random):
        with pytest.raises(PartitionError, match=">= 0"):
            graph_partition(und_random, threshold=-1)

    def test_biconnected_components_stay_whole(self):
        # disjoint cycles are biconnected: one sub-graph each,
        # regardless of threshold
        g = from_edges(
            [(i, (i + 1) % 6) for i in range(6)]
            + [(6 + i, 6 + (i + 1) % 5) for i in range(5)]
        )
        for threshold in (0, 8, 10_000):
            partition = graph_partition(g, threshold=threshold)
            assert partition.num_subgraphs == 2

    def test_subgraphs_sorted_by_arcs(self, und_random):
        partition = graph_partition(und_random)
        arcs = [sg.num_arcs for sg in partition.subgraphs]
        assert arcs == sorted(arcs, reverse=True)
        assert partition.top is partition.subgraphs[0]

    def test_boundary_art_flags_subset_of_arts(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        partition = graph_partition(g)
        assert not (
            partition.boundary_art_flags & ~partition.articulation_flags
        ).any()

    def test_membership_counts(self, und_random):
        partition = graph_partition(und_random)
        counts = partition.membership_counts()
        boundary = partition.boundary_art_flags
        assert (counts[boundary] >= 2).all()
        assert (counts[~boundary] == 1).all()


class TestSubgraphEdges:
    def test_biconnected_graph_single_subgraph(self):
        g = from_edges([(i, (i + 1) % 6) for i in range(6)] + [(0, 3)])
        partition = graph_partition(g)
        assert partition.num_subgraphs == 1
        assert partition.top.num_vertices == 6

    def test_edge_between_two_arts_not_duplicated(self):
        # two triangles sharing an edge-free articulation pair:
        # a path a-b where both a and b are cut vertices and the edge
        # a-b is its own biconnected component
        g = from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
        )
        partition = graph_partition(g, threshold=0)
        partition.validate()  # arc-sum check catches duplication

    def test_directed_arcs_recovered(self):
        # directed triangle + directed pendant chain
        g = from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 2)], directed=True
        )
        partition = graph_partition(g, threshold=0)
        partition.validate()
        total = sum(sg.num_arcs for sg in partition.subgraphs)
        assert total == g.num_arcs

    def test_isolated_vertices_form_leftover_subgraph(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)], n=6)
        partition = graph_partition(g)
        partition.validate()
        leftover = [sg for sg in partition.subgraphs if sg.num_arcs == 0]
        assert len(leftover) == 1
        assert sorted(leftover[0].vertices.tolist()) == [3, 4, 5]

    def test_empty_graph(self):
        g = from_edges([], n=0)
        partition = graph_partition(g)
        assert partition.num_subgraphs == 0
        with pytest.raises(PartitionError, match="no top"):
            partition.top


class TestRootsAndGamma:
    def test_undirected_leaves_removed(self):
        # star: hub 0 with 4 leaves. The DFS may split the star's edge
        # blocks across sub-graphs (they chain through the shared hub),
        # but the totals are fixed: every leaf is removed somewhere and
        # the hub collects gamma = 4 overall.
        g = from_edges([(0, i) for i in range(1, 5)])
        partition = graph_partition(g)
        total_gamma = sum(float(sg.gamma.sum()) for sg in partition.subgraphs)
        total_removed = sum(sg.removed.size for sg in partition.subgraphs)
        assert total_gamma == 4
        assert total_removed == 4
        for sg in partition.subgraphs:
            hub = np.flatnonzero(sg.vertices == 0)
            if hub.size and sg.gamma.sum():
                assert sg.gamma[hub[0]] == sg.gamma.sum()

    def test_directed_pendant_sources_removed(self):
        g = from_edges(
            [(0, 1), (1, 2), (2, 0), (3, 0), (4, 0)], directed=True
        )
        partition = graph_partition(g)
        total_gamma = sum(float(sg.gamma.sum()) for sg in partition.subgraphs)
        total_removed = sum(sg.removed.size for sg in partition.subgraphs)
        assert total_gamma == 2
        assert total_removed == 2
        # the removed vertices are exactly the pendant sources 3 and 4
        removed_global = sorted(
            int(sg.vertices[r])
            for sg in partition.subgraphs
            for r in sg.removed.tolist()
        )
        assert removed_global == [3, 4]

    def test_directed_sink_not_removed(self):
        # 0->1: vertex 1 has in-degree 1, out-degree 0 — stays a root
        g = from_edges([(0, 1), (1, 2), (2, 1)], directed=True)
        partition = graph_partition(g)
        sg = partition.top
        one_local = int(np.flatnonzero(sg.vertices == 1)[0])
        assert one_local in sg.roots.tolist()

    def test_boundary_art_never_removed(self):
        # path 0-1-2: if threshold forces 1 to be a boundary art of two
        # sub-graphs, it must stay in both root sets even with deg 1
        g = from_edges([(0, 1), (1, 2)])
        partition = graph_partition(g, threshold=0)
        for sg in partition.subgraphs:
            for a_local in sg.boundary_arts().tolist():
                assert a_local in sg.roots.tolist()

    def test_two_vertex_component_both_removed(self):
        g = from_edges([(0, 1)])
        partition = graph_partition(g)
        sg = partition.top
        # undirected leaf-leaf pair: both pendants, R empty
        assert sg.roots.size == 0
        assert sg.removed.size == 2
        assert sg.gamma.sum() == 2

    def test_gamma_counts_match_removed(self, zoo_entry):
        _name, g, _nxg = zoo_entry
        partition = graph_partition(g)
        for sg in partition.subgraphs:
            assert sg.gamma.sum() == sg.removed.size


class TestPaperExample:
    def test_three_subgraphs_and_arts(self):
        from repro.generators.structured import paper_example_graph

        g = paper_example_graph()
        partition = graph_partition(g, threshold=8)
        partition.validate()
        # arts 2, 3, 6; pendants 0,1 merge into the middle sub-graph
        arts = np.flatnonzero(partition.articulation_flags).tolist()
        assert arts == [2, 3, 6]
        vertex_sets = sorted(
            tuple(sorted(sg.vertices.tolist())) for sg in partition.subgraphs
        )
        # the paper's SG1/SG2/SG3 plus the pendant block {0,1,2}
        assert (3, 10, 11, 12) in vertex_sets  # SG1
        assert (6, 7, 8, 9) in vertex_sets  # SG3
        assert any(set((2, 3, 4, 5, 6)) <= set(vs) for vs in vertex_sets)
        # γ(2) == 2 in whichever sub-graph holds the pendants
        gamma2 = 0.0
        for sg in partition.subgraphs:
            mask = sg.vertices == 2
            if mask.any():
                gamma2 = max(gamma2, float(sg.gamma[np.flatnonzero(mask)[0]]))
        assert gamma2 == 2
