"""Generalized four-dependency sweeps for compressed sub-graphs.

The plain kernel (:mod:`repro.core.dependencies`) assumes every vertex
is one unit of endpoint mass, one unit of path multiplicity, and every
arc one hop.  Compression breaks all three, so the sweeps here carry:

* ``tmass[v]`` — target (endpoint) mass seeded into the dependency
  recursion when ``v`` is a target: ``w(v) = μ(v) + pfold(v)`` for
  core sweeps, doubled for interior-endpoint sweeps;
* ``mu[v]`` — σ-multiplicity as an intermediate: a twin class of k
  members offers k parallel ways through, so the weighted path count
  is ``σ̃(dst) = Σ σ̃(src)·μ(src)`` (the *source's* own μ is forced
  to 1 — one member is the actual source);
* integer arc lengths — super-edges advance distance by their chain
  length; the weighted path runs an integer-distance SSSP and replays
  the shortest-path DAG in distance buckets.

The dependency recursion becomes

    δ(a) += (σ̃(a)·μ(a)/σ̃(b)) · (tmass(b) + δ(b))        (i2i)
    δ_x(a) += (σ̃(a)·μ(a)/σ̃(b)) · δ_x(b)                 (i2o, o2o)

with the usual APGRE Phase-0 seeds (α at boundary articulation
points, β(s)·α for articulation sources).  During the backward pass
over super-edge arcs, the *merge-weighted* crossing pair mass is
accumulated into a per-arc ``flow`` array — that flow is exactly the
dependency every interior vertex of the contracted chain holds for
core-source pairs, because each interior lies on every shortest path
that uses the super-edge.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.common import WorkCounter
from repro.graph.csr import CSRGraph
from repro.graph.traversal import bfs_sigma
from repro.types import SCORE_DTYPE

__all__ = ["GeneralSweep", "unit_sweep", "weighted_sweep", "integer_sssp"]


@dataclass
class GeneralSweep:
    """Per-vertex dependency arrays of one generalized sweep."""

    source: int
    source_is_art: bool
    beta_s: float
    reached: np.ndarray
    delta_i2i: np.ndarray
    delta_i2o: np.ndarray
    delta_o2o: np.ndarray


def _phase0(
    n: int,
    s: int,
    alpha_seed: np.ndarray,
    beta: np.ndarray,
    is_art: np.ndarray,
):
    """APGRE Phase-0 initialisation (same shape as the plain kernel)."""
    delta_i2i = np.zeros(n, dtype=SCORE_DTYPE)
    delta_i2o = np.where(is_art, alpha_seed, 0.0).astype(SCORE_DTYPE)
    delta_i2o[s] = 0.0
    source_is_art = bool(is_art[s])
    beta_s = float(beta[s]) if source_is_art else 0.0
    if source_is_art:
        delta_o2o = beta_s * np.where(is_art, alpha_seed, 0.0)
        delta_o2o[s] = 0.0
        delta_o2o = delta_o2o.astype(SCORE_DTYPE)
    else:
        delta_o2o = np.zeros(n, dtype=SCORE_DTYPE)
    return delta_i2i, delta_i2o, delta_o2o, source_is_art, beta_s


def unit_sweep(
    graph: CSRGraph,
    s: int,
    *,
    mu: np.ndarray,
    tmass: np.ndarray,
    alpha_seed: np.ndarray,
    beta: np.ndarray,
    is_art: np.ndarray,
    counter: Optional[WorkCounter] = None,
) -> GeneralSweep:
    """Generalized sweep over an all-unit graph (BFS fast path).

    Reuses :func:`repro.graph.traversal.bfs_sigma` for levels and DAG
    arcs, then recomputes the μ-weighted path counts σ̃ level by
    level (the unweighted σ of the BFS is not reused — multiplicities
    change it).
    """
    n = graph.n
    res = bfs_sigma(graph, s, keep_level_arcs=True)
    if counter is not None:
        counter.add(res.edges_traversed)
    delta_i2i, delta_i2o, delta_o2o, source_is_art, beta_s = _phase0(
        n, s, alpha_seed, beta, is_art
    )
    mu_eff = mu.astype(SCORE_DTYPE, copy=True)
    mu_eff[s] = 1.0  # the source is one concrete member, not a class
    sigt = np.zeros(n, dtype=SCORE_DTYPE)
    sigt[s] = 1.0
    for d in range(res.depth):
        lsrc, ldst = res.level_arcs[d]
        if lsrc.size:
            np.add.at(sigt, ldst, sigt[lsrc] * mu_eff[lsrc])
    any_art = bool(is_art.any())
    for d in range(res.depth - 1, -1, -1):
        lsrc, ldst = res.level_arcs[d]
        if lsrc.size == 0:
            continue
        if counter is not None:
            counter.add(lsrc.size)
        coef = sigt[lsrc] * mu_eff[lsrc] / sigt[ldst]
        np.add.at(delta_i2i, lsrc, coef * (tmass[ldst] + delta_i2i[ldst]))
        np.add.at(delta_i2o, lsrc, coef * delta_i2o[ldst])
        if any_art:
            np.add.at(delta_o2o, lsrc, coef * delta_o2o[ldst])
    if len(res.levels) > 1:
        reached = np.concatenate(res.levels[1:])
    else:
        reached = np.empty(0, dtype=res.levels[0].dtype)
    return GeneralSweep(
        source=s,
        source_is_art=source_is_art,
        beta_s=beta_s,
        reached=reached,
        delta_i2i=delta_i2i,
        delta_i2o=delta_i2o,
        delta_o2o=delta_o2o,
    )


def integer_sssp(plan, s: int) -> np.ndarray:
    """Integer-length shortest distances from ``s`` on the core graph.

    Uses scipy's Dijkstra when available (the matrix is built once per
    plan and cached); falls back to a pure-Python binary-heap Dijkstra
    otherwise.  Distances are small integers, exactly representable in
    the returned float64 array (``inf`` marks unreachable vertices).
    """
    g = plan.core_graph
    try:
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra
    except ImportError:  # pragma: no cover - minimal environments
        return _heap_sssp(plan, s)
    if plan._sssp_matrix is None:
        plan._sssp_matrix = csr_matrix(
            (
                plan.arc_lengths.astype(np.float64),
                g.out_indices,
                g.out_indptr,
            ),
            shape=(g.n, g.n),
        )
    return dijkstra(plan._sssp_matrix, directed=True, indices=s)


def _heap_sssp(plan, s: int) -> np.ndarray:
    g = plan.core_graph
    indptr, indices = g.out_indptr, g.out_indices
    lengths = plan.arc_lengths
    dist = np.full(g.n, np.inf)
    dist[s] = 0.0
    heap = [(0.0, s)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for pos in range(int(indptr[v]), int(indptr[v + 1])):
            w = int(indices[pos])
            nd = d + float(lengths[pos])
            if nd < dist[w]:
                dist[w] = nd
                heapq.heappush(heap, (nd, w))
    return dist


def weighted_sweep(
    plan,
    s: int,
    *,
    mu: np.ndarray,
    tmass: np.ndarray,
    alpha_seed: np.ndarray,
    beta: np.ndarray,
    is_art: np.ndarray,
    m_src: float,
    flow: Optional[np.ndarray] = None,
    counter: Optional[WorkCounter] = None,
) -> GeneralSweep:
    """Generalized sweep over the core graph with super-edge lengths.

    Shortest-path DAG arcs are replayed in buckets of equal target
    distance (positive lengths guarantee every arc into a vertex is
    processed before any arc out of it).  When ``flow`` is given, the
    backward pass adds each super-edge arc's merge-weighted crossing
    dependency — ``m_src`` (source members + γ) times the in-source
    terms plus, for articulation sources, the β-weighted out-source
    terms — which the kernel later credits to the chain's interiors.
    """
    g = plan.core_graph
    n = g.n
    dist = integer_sssp(plan, s)
    src, dst = g.arcs()
    finite_src = np.isfinite(dist[src])
    if counter is not None:
        counter.add(int(finite_src.sum()))
    dag = finite_src & (dist[src] + plan.arc_lengths == dist[dst])
    arc_ids = np.flatnonzero(dag)
    delta_i2i, delta_i2o, delta_o2o, source_is_art, beta_s = _phase0(
        n, s, alpha_seed, beta, is_art
    )
    mu_eff = mu.astype(SCORE_DTYPE, copy=True)
    mu_eff[s] = 1.0
    sigt = np.zeros(n, dtype=SCORE_DTYPE)
    sigt[s] = 1.0
    reached = np.flatnonzero(np.isfinite(dist))
    reached = reached[reached != s]
    if arc_ids.size == 0:
        return GeneralSweep(
            source=s,
            source_is_art=source_is_art,
            beta_s=beta_s,
            reached=reached,
            delta_i2i=delta_i2i,
            delta_i2o=delta_i2o,
            delta_o2o=delta_o2o,
        )
    order = np.argsort(dist[dst[arc_ids]], kind="stable")
    arc_ids = arc_ids[order]
    dsrc, ddst = src[arc_ids], dst[arc_ids]
    dd = dist[ddst]
    bounds = np.flatnonzero(dd[1:] != dd[:-1]) + 1
    starts = np.concatenate([[0], bounds])
    ends = np.concatenate([bounds, [arc_ids.size]])
    for lo, hi in zip(starts.tolist(), ends.tolist()):
        bs, bd = dsrc[lo:hi], ddst[lo:hi]
        np.add.at(sigt, bd, sigt[bs] * mu_eff[bs])
    any_art = bool(is_art.any())
    if counter is not None:
        counter.add(arc_ids.size)
    for bi in range(len(starts) - 1, -1, -1):
        lo, hi = int(starts[bi]), int(ends[bi])
        bs, bd = dsrc[lo:hi], ddst[lo:hi]
        coef = sigt[bs] * mu_eff[bs] / sigt[bd]
        base = coef * (tmass[bd] + delta_i2i[bd])
        io = coef * delta_i2o[bd]
        np.add.at(delta_i2i, bs, base)
        np.add.at(delta_i2o, bs, io)
        if any_art:
            oo = coef * delta_o2o[bd]
            np.add.at(delta_o2o, bs, oo)
        else:
            oo = None
        if flow is not None:
            sup = plan.arc_lengths[arc_ids[lo:hi]] > 1
            if sup.any():
                f = m_src * (base[sup] + io[sup])
                if source_is_art:
                    f = f + beta_s * base[sup]
                    if oo is not None:
                        f = f + oo[sup]
                np.add.at(flow, arc_ids[lo:hi][sup], f)
    return GeneralSweep(
        source=s,
        source_is_art=source_is_art,
        beta_s=beta_s,
        reached=reached,
        delta_i2i=delta_i2i,
        delta_i2o=delta_i2o,
        delta_o2o=delta_o2o,
    )
