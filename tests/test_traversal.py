"""Unit tests for the vectorised traversal kernels."""

import numpy as np
import networkx as nx
import pytest

from repro.graph.build import from_edges, from_networkx
from repro.graph.traversal import (
    bfs,
    bfs_blocked,
    bfs_levels,
    bfs_sigma,
    bfs_sigma_hybrid,
    expand_frontier,
    reverse_bfs_blocked,
)


def nx_sigma(nxg, s):
    """Shortest-path counts from s via networkx all-shortest-paths."""
    n = nxg.number_of_nodes()
    sigma = np.zeros(n)
    sigma[s] = 1
    lengths = nx.single_source_shortest_path_length(nxg, s)
    for t in lengths:
        if t != s:
            sigma[t] = len(list(nx.all_shortest_paths(nxg, s, t)))
    return sigma


class TestExpandFrontier:
    def test_expands_all_arcs(self):
        g = from_edges([(0, 1), (0, 2), (1, 2)], directed=True)
        dst, src = expand_frontier(
            g.out_indptr, g.out_indices, np.asarray([0, 1], dtype=np.int32)
        )
        assert sorted(zip(src.tolist(), dst.tolist())) == [
            (0, 1),
            (0, 2),
            (1, 2),
        ]

    def test_empty_frontier(self):
        g = from_edges([(0, 1)], directed=True)
        dst, src = expand_frontier(
            g.out_indptr, g.out_indices, np.empty(0, dtype=np.int32)
        )
        assert dst.size == 0 and src.size == 0

    def test_duplicates_preserved(self):
        g = from_edges([(0, 2), (1, 2)], directed=True)
        dst, _src = expand_frontier(
            g.out_indptr, g.out_indices, np.asarray([0, 1], dtype=np.int32)
        )
        assert dst.tolist() == [2, 2]

    def test_pinned_output_on_fixture_graph(self):
        # pins the exact arc ordering (CSR order per frontier vertex,
        # frontier order preserved) and output dtypes, so the gather
        # micro-optimisations cannot silently reorder the hot primitive
        g = from_edges(
            [(0, 3), (0, 1), (2, 0), (2, 4), (2, 1), (4, 0), (3, 2)],
            directed=True,
        )
        frontier = np.asarray([2, 0, 4], dtype=np.int32)
        dst, src = expand_frontier(g.out_indptr, g.out_indices, frontier)
        assert dst.dtype == np.int32 and src.dtype == np.int32
        assert src.tolist() == [2, 2, 2, 0, 0, 4]
        assert dst.tolist() == [0, 1, 4, 1, 3, 0]


class TestBFS:
    def test_distances_match_networkx(self, zoo_entry):
        _name, g, nxg = zoo_entry
        if g.n == 0:
            return
        for s in {0, g.n // 2, g.n - 1}:
            dist = bfs(g, s)
            lengths = nx.single_source_shortest_path_length(nxg, s)
            for v in range(g.n):
                assert dist[v] == lengths.get(v, -1)

    def test_levels_partition_reachable(self, und_random):
        res = bfs_sigma(und_random, 0)
        seen = np.concatenate(res.levels)
        assert np.unique(seen).size == seen.size
        assert set(seen.tolist()) == set(
            np.flatnonzero(res.dist >= 0).tolist()
        )
        for d, level in enumerate(res.levels):
            assert (res.dist[level] == d).all()

    def test_sigma_matches_networkx_small(self):
        for seed, directed in [(1, False), (2, True), (3, True)]:
            nxg = nx.gnm_random_graph(18, 40, seed=seed, directed=directed)
            g = from_networkx(nxg, n=18)
            res = bfs_sigma(g, 0)
            assert np.allclose(res.sigma, nx_sigma(nxg, 0))

    def test_unreachable_sigma_zero(self):
        g = from_edges([(0, 1)], n=3, directed=True)
        res = bfs_sigma(g, 0)
        assert res.sigma[2] == 0 and res.dist[2] == -1

    def test_single_vertex(self):
        g = from_edges([], n=1)
        res = bfs_sigma(g, 0)
        assert res.dist.tolist() == [0]
        assert res.depth == 0

    def test_level_arcs_cover_dag(self, und_random):
        res = bfs_sigma(und_random, 0, keep_level_arcs=True)
        # every level-arc goes exactly one level down and the union is
        # the full shortest-path DAG
        dag_arcs = set()
        for d, (src, dst) in enumerate(res.level_arcs):
            assert (res.dist[src] == d).all()
            assert (res.dist[dst] == d + 1).all()
            dag_arcs.update(zip(src.tolist(), dst.tolist()))
        expected = set()
        gsrc, gdst = und_random.arcs()
        for u, v in zip(gsrc.tolist(), gdst.tolist()):
            if res.dist[u] >= 0 and res.dist[v] == res.dist[u] + 1:
                expected.add((u, v))
        assert dag_arcs == expected

    def test_bfs_levels_helper(self, und_random):
        levels = bfs_levels(und_random, 0)
        assert levels[0].tolist() == [0]

    def test_edges_traversed_counts_reached_outdegree(self, dir_random):
        res = bfs_sigma(dir_random, 0)
        reached = np.flatnonzero(res.dist >= 0)
        expected = int(dir_random.out_degrees()[reached].sum())
        assert res.edges_traversed == expected

    def test_deep_path_graph(self):
        n = 500
        g = from_edges([(i, i + 1) for i in range(n - 1)], directed=True)
        res = bfs_sigma(g, 0)
        assert res.depth == n - 1
        assert (res.sigma[res.dist >= 0] == 1).all()


class TestHybridBFS:
    @pytest.mark.parametrize("alpha", [0.5, 4.0, 100.0])
    def test_matches_plain_bfs(self, zoo_entry, alpha):
        _name, g, _nxg = zoo_entry
        if g.n == 0:
            return
        for s in {0, g.n - 1}:
            a = bfs_sigma(g, s)
            b = bfs_sigma_hybrid(g, s, alpha=alpha)
            assert np.array_equal(a.dist, b.dist)
            assert np.allclose(a.sigma, b.sigma)
            assert len(a.levels) == len(b.levels)
            for la, lb in zip(a.levels, b.levels):
                assert np.array_equal(np.sort(la), np.sort(lb))

    def test_bottom_up_engages_on_dense_graph(self):
        # a dense graph forces at least one bottom-up step with a tiny
        # alpha; results must still be exact
        nxg = nx.gnm_random_graph(30, 300, seed=5)
        g = from_networkx(nxg, n=30)
        res = bfs_sigma_hybrid(g, 0, alpha=0.01)
        ref = bfs_sigma(g, 0)
        assert np.allclose(res.sigma, ref.sigma)

    def test_directed_bottom_up_matches_plain_bfs(self):
        # directed dense graphs exercise the bottom-up branch's own
        # dist assignment (the top-down branch must not re-assign it)
        nxg = nx.gnm_random_graph(40, 600, seed=17, directed=True)
        g = from_networkx(nxg, n=40)
        for s in range(0, 40, 7):
            for alpha in (0.01, 1.0, 4.0):
                a = bfs_sigma(g, s)
                b = bfs_sigma_hybrid(g, s, alpha=alpha)
                assert np.array_equal(a.dist, b.dist)
                assert np.array_equal(a.sigma, b.sigma)
                assert len(a.levels) == len(b.levels)
                for la, lb in zip(a.levels, b.levels):
                    assert np.array_equal(np.sort(la), np.sort(lb))

    def test_level_arcs_equivalent(self, und_random):
        a = bfs_sigma(und_random, 0, keep_level_arcs=True)
        b = bfs_sigma_hybrid(und_random, 0, keep_level_arcs=True)
        sa = {
            (int(u), int(v))
            for src, dst in a.level_arcs
            for u, v in zip(src, dst)
        }
        sb = {
            (int(u), int(v))
            for src, dst in b.level_arcs
            for u, v in zip(src, dst)
        }
        assert sa == sb


class TestBlockedBFS:
    def test_alpha_semantics(self):
        # 0-1-2-3 path; blocking {1} from source 0 reaches nothing
        g = from_edges([(0, 1), (1, 2), (2, 3)], directed=True)
        blocked = np.asarray([False, True, False, False])
        assert bfs_blocked(g, 0, blocked) == 0
        # from 1 with {0,1} blocked: reaches 2,3
        blocked = np.asarray([True, True, False, False])
        assert bfs_blocked(g, 1, blocked) == 2

    def test_source_not_counted(self):
        g = from_edges([(0, 1)], directed=True)
        assert bfs_blocked(g, 0, np.zeros(2, dtype=bool)) == 1

    def test_reverse_blocked(self):
        g = from_edges([(0, 1), (1, 2), (3, 1)], directed=True)
        blocked = np.zeros(4, dtype=bool)
        # who can reach vertex 1?
        assert reverse_bfs_blocked(g, 1, blocked) == 2  # 0 and 3

    def test_blocked_matches_networkx(self):
        nxg = nx.gnm_random_graph(30, 70, seed=9, directed=True)
        g = from_networkx(nxg, n=30)
        rng = np.random.default_rng(0)
        for _ in range(5):
            blocked = rng.random(30) < 0.3
            s = int(rng.integers(0, 30))
            blocked[s] = False
            sub = nxg.subgraph([v for v in range(30) if not blocked[v]])
            expected = len(nx.descendants(sub, s))
            assert bfs_blocked(g, s, blocked) == expected
